package main

import "testing"

func TestBuildMachine(t *testing.T) {
	m, err := buildMachine(32, false, 4, 0, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.CS != 977 || m.CD != 21 {
		t.Fatalf("paper config not applied: %v", m)
	}
	m, err = buildMachine(32, true, 4, 0, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.CD != 16 {
		t.Fatalf("pessimistic CD = %d, want 16", m.CD)
	}
	// Overrides win over the paper config.
	m, err = buildMachine(32, false, 2, 500, 10, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.CS != 500 || m.CD != 10 || m.P != 2 || m.SigmaS != 2 {
		t.Fatalf("overrides not applied: %v", m)
	}
	// Unknown q without overrides yields an invalid machine.
	if _, err := buildMachine(48, false, 4, 0, 0, 1, 4); err == nil {
		t.Fatal("unknown q without cs/cd overrides must fail validation")
	}
	// Invalid combinations are rejected.
	if _, err := buildMachine(32, false, 4, 10, 21, 1, 4); err == nil {
		t.Fatal("CS < p·CD must fail")
	}
}

func TestRunSmoke(t *testing.T) {
	if err := run("", 8, 0, 0, 0, 32, false, 4, 0, 0, 1, 4, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("Tradeoff", 0, 4, 6, 5, 32, false, 4, 0, 0, 1, 4, "IDEAL"); err != nil {
		t.Fatal(err)
	}
	if err := run("nope", 8, 0, 0, 0, 32, false, 4, 0, 0, 1, 4, ""); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
	if err := run("", -1, 0, 0, 0, 32, false, 4, 0, 0, 1, 4, ""); err == nil {
		t.Fatal("bad workload must fail")
	}
	if err := run("", 8, 0, 0, 0, 32, false, 4, 0, 0, 1, 4, "BOGUS"); err == nil {
		t.Fatal("unknown setting must fail")
	}
}
