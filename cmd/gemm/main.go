// Command gemm executes the paper's algorithms for real — goroutine per
// core, float64 arithmetic — verifies the product against a sequential
// reference, and reports wall-clock time and effective GFLOP/s.
//
// Examples:
//
//	gemm -order 16                   # every registered schedule, 16x16 blocks of 32x32
//	gemm -algo "Tradeoff" -order 24 -q 64 -p 8
//	gemm -mode shared -order 16      # two-level hierarchy: shared arena + core arenas
//	gemm -mode shared-pipelined -order 16
//	gemm -order 32 -bench-json BENCH_gemm.json -bench-cores 1,2,4
//
// -mode selects how the executor realises staging: "packed" (per-core
// arenas, the default), "view" (strided baseline, staging probe-only),
// "shared" (the full two-level hierarchy: blocks flow memory → shared
// arena → core arenas, and the MS/MD streams are physically distinct)
// or "shared-pipelined" (the same hierarchy with a stager goroutine
// overlapping the memory↔shared stream with compute).
//
// With -bench-json the command switches to benchmark mode: it measures
// the sequential blocked baseline plus every algorithm under all four
// executor modes for each requested core count, and writes the GFLOP/s
// records — with the executor's per-level traffic byte counts and, for
// the shared-level modes, the stage-wait/compute split — as JSON: the
// repository's measured perf trajectory.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/algo"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/tune"
)

func main() {
	var (
		algoName    = flag.String("algo", "", "algorithm (default: all executable ones)")
		order       = flag.Int("order", 16, "square matrix order in blocks")
		q           = flag.Int("q", 32, "block size in coefficients")
		cores       = flag.Int("p", runtime.NumCPU(), "worker goroutines (cores); benchmark mode uses -bench-cores instead")
		chips       = flag.Int("chips", 1, "chips the cores and the shared cache are split over (must divide -p)")
		modeName    = flag.String("mode", parallel.ModePacked.String(), "executor mode: packed, view, shared or shared-pipelined (benchmark mode measures all four)")
		verify      = flag.Bool("verify", true, "check the result against the sequential reference (ignored in benchmark mode)")
		seed        = flag.Uint64("seed", 1, "input matrix seed")
		benchJSON   = flag.String("bench-json", "", "benchmark mode: write GFLOP/s records to this JSON file")
		benchCores  = flag.String("bench-cores", "1,2,4", "core counts measured in benchmark mode")
		benchChips  = flag.String("bench-chips", "1", "chip counts measured in benchmark mode (shared-level modes; cores not divisible by a chip count are skipped)")
		benchReps   = flag.Int("bench-reps", 3, "repetitions per benchmark configuration (fastest wins)")
		kernelShape = flag.String("kernel-shape", "", "kernel register-blocking shape: 4x4, 8x4 or 8x8 (default: TUNE.json, else 4x4)")
		lookahead   = flag.Int("lookahead", 0, "pipeline lookahead depth of shared-pipelined mode (default: TUNE.json, else 1)")
		tunePath    = flag.String("tune", "", "load tunables from this TUNE.json when it matches the host; explicit flags win")
		optimize    = flag.Bool("optimize", true, "run staged programs through the schedule optimizer (benchmark mode measures baseline/optimized pairs for staged modes)")
		faults      = flag.String("faults", "", "chaos mode: inject faults from this spec (e.g. 'panic@1:7', 'stagerr~0.01;seed=42'; see internal/faultinject); the faulted run must fail with provenance, Reset, and re-run clean")
	)
	flag.Parse()

	params, err := resolveTuning(*tunePath, *kernelShape, *lookahead, *q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gemm:", err)
		os.Exit(1)
	}
	tun, err := params.Tuning()
	if err == nil && *benchJSON != "" {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "p" || f.Name == "verify" || f.Name == "mode" {
				fmt.Fprintf(os.Stderr, "gemm: -%s is ignored in benchmark mode (use -bench-cores; all modes are measured; correctness is covered by go test)\n", f.Name)
			}
		})
		var coreList, chipList []int
		coreList, err = report.ParseCores(*benchCores)
		if err == nil {
			chipList, err = report.ParseCores(*benchChips)
		}
		if err == nil {
			err = bench(*benchJSON, *algoName, *order, params.Q, coreList, chipList, *benchReps, *seed, tun, params, *optimize)
		}
	} else if err == nil {
		var mode parallel.Mode
		mode, err = parallel.ParseMode(*modeName)
		if err == nil {
			tun.Optimize = *optimize
			if *faults != "" {
				err = chaos(*algoName, *faults, *order, params.Q, *cores, *chips, *seed, mode, tun)
			} else {
				err = run(*algoName, *order, params.Q, *cores, *chips, *verify, *seed, mode, tun)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gemm:", err)
		os.Exit(1)
	}
}

// chaos is the -faults path: run one algorithm under an injected fault
// plan with the integrity tripwire armed, and prove the failure model
// end to end. The faulted run must either complete clean (the plan
// never fired — possible for probabilistic rules) or fail with a
// structured *parallel.RunError carrying op provenance; anything else —
// a bare error, a crash, a deadlock — is a harness failure and exits
// non-zero. After the fault the executor is Reset, the inputs restored,
// and the very same executor re-runs the program clean, verified
// against the sequential reference: run-after-fault, demonstrated on
// every invocation.
func chaos(algoName, spec string, order, q, cores, chips int, seed uint64, mode parallel.Mode, tun parallel.Tuning) error {
	plan, err := faultinject.ParseSpec(spec)
	if err != nil {
		return err
	}
	names, err := selectAlgos(algoName)
	if err != nil {
		return err
	}
	a, err := algo.ByName(names[0])
	if err != nil {
		return err
	}
	mach, err := bigMachine(cores, q, chips)
	if err != nil {
		return err
	}
	tr, err := matrix.NewTriple(order, order, order, q, seed)
	if err != nil {
		return err
	}
	m, n, z := tr.Dims()
	prog, err := a.Schedule(mach, algo.Workload{M: m, N: n, Z: z})
	if err != nil {
		return err
	}
	team, err := parallel.NewTeam(mach.P)
	if err != nil {
		return err
	}
	defer team.Close()
	ex, err := parallel.NewExecutor(team, tr, nil, mode, mach.CD, mach.CS)
	if err != nil {
		return err
	}
	ex.SetTuning(tun)
	ex.SetFaultInjector(plan)
	ex.SetIntegrityChecks(true)

	fmt.Printf("chaos: %q under plan %q (mode %v, p=%d)\n", names[0], plan, mode, cores)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := ex.RunContext(ctx, prog); err != nil {
		var re *parallel.RunError
		if !errors.As(err, &re) {
			return fmt.Errorf("chaos: fault surfaced without RunError provenance: %w", err)
		}
		fmt.Printf("chaos: faulted as expected: %v\n", re)
		ex.Reset()
	} else {
		fmt.Println("chaos: no injected fault fired; run completed clean")
	}

	// Recovery: restore the inputs, drop the injector, and prove the same
	// executor replays the program clean after the failure.
	ex.SetFaultInjector(nil)
	fresh, err := matrix.NewTriple(order, order, order, q, seed)
	if err != nil {
		return err
	}
	for _, mats := range [][2]*matrix.Dense{
		{tr.A.Dense(), fresh.A.Dense()},
		{tr.B.Dense(), fresh.B.Dense()},
		{tr.C.Dense(), fresh.C.Dense()},
	} {
		if err := mats[0].CopyFrom(mats[1]); err != nil {
			return err
		}
	}
	if err := ex.Run(prog); err != nil {
		return fmt.Errorf("chaos: clean re-run after Reset failed: %w", err)
	}
	diff, err := parallel.Verify(tr)
	if err != nil {
		return err
	}
	if diff > 1e-9 {
		return fmt.Errorf("chaos: clean re-run deviates from the sequential reference by %g", diff)
	}
	fmt.Printf("chaos: recovered; clean re-run verified against the sequential reference (max |err| %.2e)\n", diff)
	return nil
}

// resolveTuning composes the configuration in the documented order —
// explicit flags > a host-matched TUNE.json > defaults. The returned
// Params always carries a concrete block edge (the file's winner only
// replaces the default when -q was not given).
func resolveTuning(tunePath, shapeFlag string, lookaheadFlag, qFlag int) (tune.Params, error) {
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	var params tune.Params
	if tunePath != "" {
		tf, err := tune.Load(tunePath)
		if err != nil {
			return tune.Params{}, err
		}
		if !tf.MatchesHost() {
			fmt.Fprintf(os.Stderr, "gemm: %s was tuned on a different host; ignoring it\n", tunePath)
		} else if tf.Gemm != nil {
			params = tf.Gemm.Params
		}
	}
	params = tune.Override{
		Shape: shapeFlag, ShapeSet: explicit["kernel-shape"],
		Lookahead: lookaheadFlag, LookaheadSet: explicit["lookahead"],
		Q: qFlag, QSet: explicit["q"],
	}.Apply(params)
	if params.Q == 0 {
		params.Q = qFlag
	}
	return params, nil
}

// bigMachine models the benchmark host for p cores and block size q:
// the 8MB-shared/256KB-distributed quad-core of §4.1 generalised to
// arbitrary p and q, with the capacities clamped to stay a valid
// hierarchy. chips > 1 splits the cores over that many chips, each
// with its own CS-block shared cache (the CS clamp to p·CD already
// dominates the per-chip floor (p/chips)·CD, so the hierarchy stays
// valid for every divisor of p).
func bigMachine(p, q, chips int) (machine.Machine, error) {
	mach := machine.Machine{
		P:      p,
		CS:     machine.BlocksFromBytes(8<<20, q, 1.0),
		CD:     machine.BlocksFromBytes(256<<10, q, 2.0/3.0),
		SigmaS: machine.DefaultSigmaS,
		SigmaD: machine.DefaultSigmaD,
		Q:      q,
		Chips:  chips,
	}
	if mach.CD < 3 {
		mach.CD = 3
	}
	if mach.CS < mach.P*mach.CD {
		mach.CS = mach.P * mach.CD
	}
	if err := mach.Validate(); err != nil {
		return machine.Machine{}, err
	}
	return mach, nil
}

// optSettings returns the optimizer settings measured for one mode:
// staged modes get a baseline/optimized pair when the optimizer is
// enabled, so every record carries its own control. View staging moves
// no counted bytes, so it stays baseline-only.
func optSettings(mode parallel.Mode, optimize bool) []bool {
	if !optimize || mode == parallel.ModeView {
		return []bool{false}
	}
	return []bool{false, true}
}

// speedupSuffix marks ratios whose both sides ran the optimizer.
func speedupSuffix(sp report.BenchSpeedup) string {
	if sp.Optimized {
		return "+opt"
	}
	return ""
}

// selectAlgos resolves -algo to the measured name list, failing fast on
// unknown names (before any work runs).
func selectAlgos(algoName string) ([]string, error) {
	if algoName == "" {
		return algo.Names(), nil
	}
	if _, err := algo.ByName(algoName); err != nil {
		return nil, err
	}
	return []string{algoName}, nil
}

func run(algoName string, order, q, cores, chips int, verify bool, seed uint64, mode parallel.Mode, tun parallel.Tuning) error {
	names, err := selectAlgos(algoName)
	if err != nil {
		return err
	}

	mach, err := bigMachine(cores, q, chips)
	if err != nil {
		return err
	}
	fmt.Printf("machine: %s\nmode: %v\nworkload: %d×%d×%d blocks of %d×%d coefficients\n\n",
		mach, mode, order, order, order, q, q)

	flops := 2 * float64(order*q) * float64(order*q) * float64(order*q)
	tbl := report.NewTable("algorithm", "time", "GFLOP/s", "max |err|")
	for _, name := range names {
		tr, err := matrix.NewTriple(order, order, order, q, seed)
		if err != nil {
			return err
		}
		start := time.Now()
		if err := parallel.MultiplyTuned(name, tr, mach, mode, tun); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		elapsed := time.Since(start)

		errStr := "skipped"
		if verify {
			diff, err := parallel.Verify(tr)
			if err != nil {
				return err
			}
			errStr = fmt.Sprintf("%.2e", diff)
		}
		tbl.AddRow(name, elapsed.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2f", flops/elapsed.Seconds()/1e9), errStr)
	}

	// Sequential baseline for the speedup story.
	elapsed, err := measureSequential(order, q, seed)
	if err != nil {
		return err
	}
	tbl.AddRow("sequential blocked", elapsed.Round(time.Microsecond).String(),
		fmt.Sprintf("%.2f", flops/elapsed.Seconds()/1e9), "reference")

	fmt.Print(tbl.String())
	return nil
}

// measureSequential times one C += A×B with the sequential blocked
// kernel: the single-core "naive" anchor both output modes report.
func measureSequential(order, q int, seed uint64) (time.Duration, error) {
	tr, err := matrix.NewTriple(order, order, order, q, seed)
	if err != nil {
		return 0, err
	}
	out := matrix.New(tr.C.Dense().Rows(), tr.C.Dense().Cols())
	start := time.Now()
	if err := matrix.MulBlocked(out, tr.A.Dense(), tr.B.Dense(), q); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// bench measures naive vs view vs packed vs shared vs shared-pipelined
// and writes the JSON record, including the executor's per-level
// traffic byte counts and, for the shared-level modes, the stage-wait
// versus compute wall-time split. Every configuration runs reps times
// and the fastest repetition is recorded — the standard
// minimum-wall-time estimator, least sensitive to scheduler noise on
// shared machines (the traffic counts are deterministic, identical in
// every repetition; the overlap split is taken from the same fastest
// repetition).
func bench(path, algoName string, order, q int, coreList, chipList []int, reps int, seed uint64, tun parallel.Tuning, params tune.Params, optimize bool) error {
	if reps < 1 {
		reps = 1
	}
	if len(chipList) == 0 {
		chipList = []int{1}
	}
	names, err := selectAlgos(algoName)
	if err != nil {
		return err
	}
	rec := report.NewBench("gemm")
	fmt.Printf("benchmark: n=%d (order %d blocks of %d×%d), cores %v, chips %v, best of %d\n\n",
		order*q, order, q, q, coreList, chipList, reps)

	best := func(f func() (time.Duration, error)) (time.Duration, error) {
		var min time.Duration
		for i := 0; i < reps; i++ {
			d, err := f()
			if err != nil {
				return 0, err
			}
			if min == 0 || d < min {
				min = d
			}
		}
		return min, nil
	}

	// Operands are allocated once and C re-zeroed between repetitions —
	// A and B are deterministic from the seed, so re-filling them per
	// rep would be identical untimed work.
	tr, err := matrix.NewTriple(order, order, order, q, seed)
	if err != nil {
		return err
	}
	out := matrix.New(tr.C.Dense().Rows(), tr.C.Dense().Cols())
	elapsed, err := best(func() (time.Duration, error) {
		out.Zero()
		start := time.Now()
		if err := matrix.MulBlocked(out, tr.A.Dense(), tr.B.Dense(), q); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	})
	if err != nil {
		return err
	}
	naive := rec.Add("sequential blocked", "naive", 1, order, q, elapsed)
	fmt.Printf("%-20s %-7s p=%d  %8.2f GFLOP/s\n", naive.Algorithm, naive.Mode, naive.Cores, naive.GFlops)

	for _, p := range coreList {
		team, err := parallel.NewTeam(p)
		if err != nil {
			return err
		}
		for _, nchips := range chipList {
			if nchips > p || p%nchips != 0 {
				fmt.Printf("(skipping chips=%d at p=%d: cores must split evenly)\n", nchips, p)
				continue
			}
			mach, err := bigMachine(p, q, nchips)
			if err != nil {
				team.Close()
				return err
			}
			// Single-chip configurations measure all four modes; the chip
			// split only exists at the shared level, so multi-chip ones
			// measure just the two shared-level modes.
			modes := []parallel.Mode{parallel.ModeView, parallel.ModePacked, parallel.ModeShared, parallel.ModeSharedPipelined}
			if nchips > 1 {
				modes = []parallel.Mode{parallel.ModeShared, parallel.ModeSharedPipelined}
			}
			for _, name := range names {
				a, err := algo.ByName(name)
				if err != nil {
					team.Close()
					return err
				}
				// Prepare once per configuration: program and executor live
				// across repetitions, so the timed region is the executed
				// schedule itself (validation is cached after the first run).
				prog, err := a.Schedule(mach, algo.Workload{M: order, N: order, Z: order})
				if err != nil {
					team.Close()
					return err
				}
				for _, mode := range modes {
					// Staged modes are measured as a baseline/optimized
					// pair over the same operands and program, so the
					// record carries the optimizer's measured MS savings
					// cell by cell.
					var baseMSBytes uint64
					for _, opt := range optSettings(mode, optimize) {
						ex, err := parallel.NewExecutor(team, tr, nil, mode, mach.CD, mach.CS)
						if err != nil {
							team.Close()
							return err
						}
						exTun := tun
						exTun.Optimize = opt
						ex.SetTuning(exTun)
						var elapsed, stageWait, compute time.Duration
						for i := 0; i < reps; i++ {
							tr.C.Dense().Zero()
							start := time.Now()
							if err := ex.Run(prog); err != nil {
								team.Close()
								return fmt.Errorf("%s (%v, p=%d, chips=%d): %w", name, mode, p, nchips, err)
							}
							if d := time.Since(start); elapsed == 0 || d < elapsed {
								elapsed = d
								stageWait = ex.StageWait()
								compute = ex.ComputeTime()
							}
						}
						r := rec.Add(name, mode.String(), p, order, q, elapsed)
						r.KernelShape = params.Shape
						r.Lookahead = params.Lookahead
						r.SetTopology(nchips, p)
						tra := ex.Traffic()
						r.MSStageBytes = tra.MS.StageBytes
						r.MSWriteBackBytes = tra.MS.WriteBackBytes
						r.MDStageBytes = tra.MD.StageBytes
						r.MDWriteBackBytes = tra.MD.WriteBackBytes
						r.ICStageBytes = tra.IC.StageBytes
						r.ICWriteBackBytes = tra.IC.WriteBackBytes
						if opt {
							r.Optimized = true
							if ms := tra.MS.Bytes(); baseMSBytes >= ms {
								r.MSElidedBytes = baseMSBytes - ms
							}
						} else {
							baseMSBytes = tra.MS.Bytes()
						}
						label := fmt.Sprintf("p=%d", p)
						if nchips > 1 {
							label += fmt.Sprintf(" chips=%d", nchips)
						}
						modeLabel := r.Mode
						if opt {
							modeLabel += "+opt"
						}
						if mode.SharedLevel() {
							r.SetOverlap(stageWait, compute)
							extra := ""
							if nchips > 1 {
								extra = fmt.Sprintf(" IC=%s", report.FormatBytes(tra.IC.Bytes()))
							}
							fmt.Printf("%-20s %-17s %-13s %8.2f GFLOP/s  MS=%s MD=%s%s  stage-wait=%v overlap=%.2f\n",
								r.Algorithm, modeLabel, label, r.GFlops,
								report.FormatBytes(tra.MS.Bytes()), report.FormatBytes(tra.MD.Bytes()), extra,
								stageWait.Round(time.Microsecond), r.OverlapEfficiency)
						} else {
							fmt.Printf("%-20s %-17s %-13s %8.2f GFLOP/s  MS=%s MD=%s\n",
								r.Algorithm, modeLabel, label, r.GFlops,
								report.FormatBytes(tra.MS.Bytes()), report.FormatBytes(tra.MD.Bytes()))
						}
					}
				}
			}
		}
		team.Close()
	}

	fmt.Println("\npacked over view:")
	for _, sp := range rec.Speedup(parallel.ModePacked.String(), parallel.ModeView.String()) {
		fmt.Printf("%-20s p=%d%s  %5.2fx\n", sp.Algorithm, sp.Cores, speedupSuffix(sp), sp.Ratio)
	}
	fmt.Println("\npipelined over shared:")
	for _, sp := range rec.Speedup(parallel.ModeSharedPipelined.String(), parallel.ModeShared.String()) {
		label := fmt.Sprintf("p=%d%s", sp.Cores, speedupSuffix(sp))
		if sp.Chips > 1 {
			label += fmt.Sprintf(" chips=%d", sp.Chips)
		}
		fmt.Printf("%-20s %-13s %5.2fx\n", sp.Algorithm, label, sp.Ratio)
	}
	if err := rec.WriteJSONFile(path); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (%d runs)\n", path, len(rec.Runs))
	return nil
}
