// Command gemm executes the paper's algorithms for real — goroutine per
// core, float64 arithmetic — verifies the product against a sequential
// reference, and reports wall-clock time and effective GFLOP/s.
//
// Examples:
//
//	gemm -order 16                   # every registered schedule, 16x16 blocks of 32x32
//	gemm -algo "Tradeoff" -order 24 -q 64 -p 8
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/algo"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/report"
)

func main() {
	var (
		algoName = flag.String("algo", "", "algorithm (default: all executable ones)")
		order    = flag.Int("order", 16, "square matrix order in blocks")
		q        = flag.Int("q", 32, "block size in coefficients")
		cores    = flag.Int("p", runtime.NumCPU(), "worker goroutines (cores)")
		verify   = flag.Bool("verify", true, "check the result against the sequential reference")
		seed     = flag.Uint64("seed", 1, "input matrix seed")
	)
	flag.Parse()

	if err := run(*algoName, *order, *q, *cores, *verify, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "gemm:", err)
		os.Exit(1)
	}
}

func run(algoName string, order, q, cores int, verify bool, seed uint64) error {
	names := algo.Names()
	if algoName != "" {
		names = []string{algoName}
	}

	mach := machine.Machine{
		P:      cores,
		CS:     machine.BlocksFromBytes(8<<20, q, 1.0),
		CD:     machine.BlocksFromBytes(256<<10, q, 2.0/3.0),
		SigmaS: machine.DefaultSigmaS,
		SigmaD: machine.DefaultSigmaD,
		Q:      q,
	}
	if mach.CD < 3 {
		mach.CD = 3
	}
	if mach.CS < mach.P*mach.CD {
		mach.CS = mach.P * mach.CD
	}
	if err := mach.Validate(); err != nil {
		return err
	}
	fmt.Printf("machine: %s\nworkload: %d×%d×%d blocks of %d×%d coefficients\n\n",
		mach, order, order, order, q, q)

	flops := 2 * float64(order*q) * float64(order*q) * float64(order*q)
	tbl := report.NewTable("algorithm", "time", "GFLOP/s", "max |err|")
	for _, name := range names {
		tr, err := matrix.NewTriple(order, order, order, q, seed)
		if err != nil {
			return err
		}
		start := time.Now()
		if err := parallel.Multiply(name, tr, mach); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		elapsed := time.Since(start)

		errStr := "skipped"
		if verify {
			diff, err := parallel.Verify(tr)
			if err != nil {
				return err
			}
			errStr = fmt.Sprintf("%.2e", diff)
		}
		tbl.AddRow(name, elapsed.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2f", flops/elapsed.Seconds()/1e9), errStr)
	}

	// Sequential baseline for the speedup story.
	tr, err := matrix.NewTriple(order, order, order, q, seed)
	if err != nil {
		return err
	}
	out := matrix.New(tr.C.Dense().Rows(), tr.C.Dense().Cols())
	start := time.Now()
	if err := matrix.MulBlocked(out, tr.A.Dense(), tr.B.Dense(), q); err != nil {
		return err
	}
	elapsed := time.Since(start)
	tbl.AddRow("sequential blocked", elapsed.Round(time.Microsecond).String(),
		fmt.Sprintf("%.2f", flops/elapsed.Seconds()/1e9), "reference")

	fmt.Print(tbl.String())
	return nil
}
