package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/parallel"
	"repro/internal/tune"
)

func TestRunSmoke(t *testing.T) {
	if err := run("", 4, 8, 2, 1, true, 1, parallel.ModePacked, parallel.DefaultTuning); err != nil {
		t.Fatal(err)
	}
	if err := run("Tradeoff", 4, 8, 2, 1, false, 1, parallel.ModeView, parallel.DefaultTuning); err != nil {
		t.Fatal(err)
	}
	// The shared-physical mode must run the whole registry end to end,
	// on one chip and with the shared level split over two.
	if err := run("", 4, 8, 2, 1, true, 1, parallel.ModeShared, parallel.DefaultTuning); err != nil {
		t.Fatal(err)
	}
	if err := run("", 4, 8, 2, 2, true, 1, parallel.ModeShared, parallel.DefaultTuning); err != nil {
		t.Fatal(err)
	}
	if err := run("nope", 4, 8, 2, 1, false, 1, parallel.ModePacked, parallel.DefaultTuning); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
	if err := run("", 4, 8, 2, 3, true, 1, parallel.ModeShared, parallel.DefaultTuning); err == nil {
		t.Fatal("chips that do not divide p must fail validation")
	}
}

func TestBenchSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_gemm.json")
	if err := bench(path, "Shared Opt.", 4, 8, []int{1, 2}, []int{1, 2}, 1, 1, parallel.DefaultTuning, tune.Params{}, true); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Name string `json:"name"`
		Runs []struct {
			Algorithm        string  `json:"algorithm"`
			Mode             string  `json:"mode"`
			Cores            int     `json:"cores"`
			Chips            int     `json:"chips"`
			CoresPerChip     int     `json:"cores_per_chip"`
			GFlops           float64 `json:"gflops"`
			MSStageBytes     uint64  `json:"ms_stage_bytes"`
			MSWriteBackBytes uint64  `json:"ms_writeback_bytes"`
			MDStageBytes     uint64  `json:"md_stage_bytes"`
			MDWriteBackBytes uint64  `json:"md_writeback_bytes"`
			ICStageBytes     uint64  `json:"ic_stage_bytes"`
			ComputeSeconds   float64 `json:"compute_seconds"`
			Optimized        bool    `json:"optimized"`
			MSElidedBytes    uint64  `json:"ms_elided_bytes"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	// 1 naive + view × 2 core counts + the 3 staging modes × 2 core
	// counts × 2 optimize settings at chips=1 + the 2 shared-level modes
	// × 2 optimize settings at (p=2, chips=2); chips=2 cannot split p=1
	// and is skipped, and view has no schedule stream to optimize.
	if rec.Name != "gemm" || len(rec.Runs) != 19 {
		t.Fatalf("record has %d runs, want 19: %+v", len(rec.Runs), rec)
	}
	sharedMS := map[string]uint64{}
	multiChip, optimized := 0, 0
	for _, r := range rec.Runs {
		if r.GFlops <= 0 {
			t.Fatalf("non-positive GFLOP/s in %+v", r)
		}
		if r.Optimized {
			optimized++
		} else if r.MSElidedBytes != 0 {
			t.Fatalf("baseline run carries elided bytes: %+v", r)
		}
		// A staged algorithm must report both physical streams in the
		// shared-level modes (plus the stage-wait/compute split), only
		// the distributed one in packed mode, and none in view/naive.
		switch r.Mode {
		case "shared", "shared-pipelined":
			if r.MSStageBytes == 0 || r.MDStageBytes == 0 || r.MSWriteBackBytes == 0 {
				t.Fatalf("%s run missing per-level traffic: %+v", r.Mode, r)
			}
			if r.ComputeSeconds <= 0 {
				t.Fatalf("%s run missing overlap split: %+v", r.Mode, r)
			}
			if r.Chips > 1 {
				multiChip++
				if r.CoresPerChip != r.Cores/r.Chips {
					t.Fatalf("chips=%d run has cores_per_chip=%d, want %d: %+v", r.Chips, r.CoresPerChip, r.Cores/r.Chips, r)
				}
				// Shared Opt. declares no home policy, so every block
				// homes on chip 0: each refill by a chip-1 core crosses.
				if r.ICStageBytes == 0 {
					t.Fatalf("multi-chip run of an un-homed schedule counts no inter-chip bytes: %+v", r)
				}
			} else {
				sharedMS[r.Mode] += r.MSStageBytes
				if r.ICStageBytes != 0 {
					t.Fatalf("single-chip run counts inter-chip bytes: %+v", r)
				}
			}
		case "packed":
			if r.MSStageBytes != 0 || r.MDStageBytes == 0 {
				t.Fatalf("packed run traffic malformed: %+v", r)
			}
		default:
			if r.MSStageBytes != 0 || r.MDStageBytes != 0 {
				t.Fatalf("%s run must move no counted bytes: %+v", r.Mode, r)
			}
		}
	}
	if multiChip != 4 {
		t.Fatalf("record has %d multi-chip runs, want 4 (shared + shared-pipelined at p=2, chips=2, baseline and optimized)", multiChip)
	}
	if optimized != 8 {
		t.Fatalf("record has %d optimized runs, want 8 (3 staging modes × 2 cores + 2 shared-level modes at chips=2)", optimized)
	}
	// Pipelining may only change timing, never traffic.
	if sharedMS["shared"] != sharedMS["shared-pipelined"] {
		t.Fatalf("pipelined MS bytes %d differ from serial %d", sharedMS["shared-pipelined"], sharedMS["shared"])
	}
}
