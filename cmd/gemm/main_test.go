package main

import "testing"

func TestRunSmoke(t *testing.T) {
	if err := run("", 4, 8, 2, true, 1); err != nil {
		t.Fatal(err)
	}
	if err := run("Tradeoff", 4, 8, 2, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := run("nope", 4, 8, 2, false, 1); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
}
