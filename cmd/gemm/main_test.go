package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/parallel"
	"repro/internal/tune"
)

func TestRunSmoke(t *testing.T) {
	if err := run("", 4, 8, 2, true, 1, parallel.ModePacked, parallel.DefaultTuning); err != nil {
		t.Fatal(err)
	}
	if err := run("Tradeoff", 4, 8, 2, false, 1, parallel.ModeView, parallel.DefaultTuning); err != nil {
		t.Fatal(err)
	}
	// The shared-physical mode must run the whole registry end to end.
	if err := run("", 4, 8, 2, true, 1, parallel.ModeShared, parallel.DefaultTuning); err != nil {
		t.Fatal(err)
	}
	if err := run("nope", 4, 8, 2, false, 1, parallel.ModePacked, parallel.DefaultTuning); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
}

func TestBenchSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_gemm.json")
	if err := bench(path, "Tradeoff", 4, 8, []int{1, 2}, 1, 1, parallel.DefaultTuning, tune.Params{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Name string `json:"name"`
		Runs []struct {
			Algorithm        string  `json:"algorithm"`
			Mode             string  `json:"mode"`
			Cores            int     `json:"cores"`
			GFlops           float64 `json:"gflops"`
			MSStageBytes     uint64  `json:"ms_stage_bytes"`
			MSWriteBackBytes uint64  `json:"ms_writeback_bytes"`
			MDStageBytes     uint64  `json:"md_stage_bytes"`
			MDWriteBackBytes uint64  `json:"md_writeback_bytes"`
			ComputeSeconds   float64 `json:"compute_seconds"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	// 1 naive + (view+packed+shared+shared-pipelined) × 2 core counts
	// for one algorithm.
	if rec.Name != "gemm" || len(rec.Runs) != 9 {
		t.Fatalf("record has %d runs, want 9: %+v", len(rec.Runs), rec)
	}
	sharedMS := map[string]uint64{}
	for _, r := range rec.Runs {
		if r.GFlops <= 0 {
			t.Fatalf("non-positive GFLOP/s in %+v", r)
		}
		// A staged algorithm must report both physical streams in the
		// shared-level modes (plus the stage-wait/compute split), only
		// the distributed one in packed mode, and none in view/naive.
		switch r.Mode {
		case "shared", "shared-pipelined":
			if r.MSStageBytes == 0 || r.MDStageBytes == 0 || r.MSWriteBackBytes == 0 {
				t.Fatalf("%s run missing per-level traffic: %+v", r.Mode, r)
			}
			if r.ComputeSeconds <= 0 {
				t.Fatalf("%s run missing overlap split: %+v", r.Mode, r)
			}
			sharedMS[r.Mode] += r.MSStageBytes
		case "packed":
			if r.MSStageBytes != 0 || r.MDStageBytes == 0 {
				t.Fatalf("packed run traffic malformed: %+v", r)
			}
		default:
			if r.MSStageBytes != 0 || r.MDStageBytes != 0 {
				t.Fatalf("%s run must move no counted bytes: %+v", r.Mode, r)
			}
		}
	}
	// Pipelining may only change timing, never traffic.
	if sharedMS["shared"] != sharedMS["shared-pipelined"] {
		t.Fatalf("pipelined MS bytes %d differ from serial %d", sharedMS["shared-pipelined"], sharedMS["shared"])
	}
}
