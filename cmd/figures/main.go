// Command figures regenerates every figure of the paper's evaluation
// section. For each (sub-)figure it writes a CSV file with the data
// series and prints an ASCII rendering to stdout.
//
// Examples:
//
//	figures                        # all figures at laptop scale, CSVs into ./results
//	figures -scale tiny            # quick smoke run
//	figures -scale full            # paper-scale sweeps (hours)
//	figures -only fig7 -out /tmp/r # only Figure 7's sub-figures
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		scale = flag.String("scale", "default", "sweep scale: tiny, default or full")
		out   = flag.String("out", "results", "output directory for CSV files")
		only  = flag.String("only", "", "restrict to figures whose id starts with this prefix (e.g. fig7, fig12)")
		plot  = flag.Bool("plot", true, "print ASCII charts to stdout")
	)
	flag.Parse()

	if err := run(*scale, *out, *only, *plot); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(scale, out, only string, plot bool) error {
	var opt experiments.Options
	switch scale {
	case "tiny":
		opt = experiments.Tiny()
	case "default":
		opt = experiments.Default()
	case "full":
		opt = experiments.Full()
	default:
		return fmt.Errorf("unknown scale %q (want tiny, default or full)", scale)
	}

	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	type generator struct {
		name string
		gen  func(experiments.Options) ([]experiments.Figure, error)
	}
	gens := []generator{
		{"fig4", liftSingle(experiments.Figure4)},
		{"fig5", liftSingle(experiments.Figure5)},
		{"fig6", liftSingle(experiments.Figure6)},
		{"fig7", experiments.Figure7},
		{"fig8", experiments.Figure8},
		{"fig9", experiments.Figure9},
		{"fig10", experiments.Figure10},
		{"fig11", experiments.Figure11},
		{"fig12", experiments.Figure12},
		{"abl", experiments.Ablations},
		{"scale", experiments.ScalingStudy},
	}

	total := 0
	for _, g := range gens {
		if only != "" && !strings.HasPrefix(g.name, prefixRoot(only)) && !strings.HasPrefix(only, g.name) {
			continue
		}
		start := time.Now()
		figs, err := g.gen(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", g.name, err)
		}
		for _, fig := range figs {
			if only != "" && !strings.HasPrefix(fig.ID, only) {
				continue
			}
			path := filepath.Join(out, fig.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			err = report.WriteCSV(f, fig.XLabel, fig.Series)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
			if plot {
				fmt.Println(report.Chart(fig.Title, fig.Series, 72, 18))
				if fig.Notes != "" {
					fmt.Println("note:", fig.Notes)
				}
				fmt.Println()
			}
			fmt.Printf("wrote %s\n", path)
			total++
		}
		fmt.Printf("%s done in %v\n\n", g.name, time.Since(start).Round(time.Millisecond))
	}
	fmt.Printf("%d figure files written to %s\n", total, out)
	return nil
}

// liftSingle adapts a single-figure generator to the multi-figure shape.
func liftSingle(g func(experiments.Options) (experiments.Figure, error)) func(experiments.Options) ([]experiments.Figure, error) {
	return func(opt experiments.Options) ([]experiments.Figure, error) {
		f, err := g(opt)
		if err != nil {
			return nil, err
		}
		return []experiments.Figure{f}, nil
	}
}

// prefixRoot maps a figure-id prefix like "fig12b" to its generator name
// ("fig12").
func prefixRoot(only string) string {
	root := only
	for i := len(root) - 1; i >= 3; i-- {
		if root[i] >= '0' && root[i] <= '9' {
			return root[:i+1]
		}
		root = root[:i]
	}
	return root
}
