package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPrefixRoot(t *testing.T) {
	cases := map[string]string{
		"fig7":   "fig7",
		"fig7a":  "fig7",
		"fig12":  "fig12",
		"fig12b": "fig12",
		"fig4":   "fig4",
		"abl":    "abl",
	}
	for in, want := range cases {
		if got := prefixRoot(in); got != want {
			t.Errorf("prefixRoot(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRunTinySingleFigure(t *testing.T) {
	dir := t.TempDir()
	if err := run("tiny", dir, "fig4", false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV written")
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	if err := run("huge", t.TempDir(), "", false); err == nil {
		t.Fatal("unknown scale must fail")
	}
}
