// Command repovet runs the repo's custom vet suite — the source-level
// invariants go vet cannot know about — over the given package
// patterns (default ./...):
//
//	kernelaccesses  every switch over schedule.Kernel covers all kernels
//	kernelalloc     //repro:kernel functions are allocation-free; the
//	                matrix kernel name family must carry the directive
//	trafficowner    LevelTraffic elements are only mutated through the
//	                owning worker's index
//
// Output is vet-style file:line:col diagnostics; the exit status is 1
// when anything is reported, 2 when analysis itself fails. CI runs
// `repovet ./...` as a blocking gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/loader"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: repovet [packages]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
