package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/parallel"
	"repro/internal/tune"
)

func TestRunSmoke(t *testing.T) {
	for _, mode := range []parallel.Mode{parallel.ModePacked, parallel.ModeView, parallel.ModeShared, parallel.ModeSharedPipelined} {
		if err := run(48, 8, 2, 1, true, 1, mode, parallel.DefaultTuning); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
	// Ragged n mod q ≠ 0 must run end to end too, as must the shared
	// level split over two chips (ragged and square).
	if err := run(37, 8, 2, 1, true, 1, parallel.ModePacked, parallel.DefaultTuning); err != nil {
		t.Fatal(err)
	}
	if err := run(48, 8, 2, 2, true, 1, parallel.ModeShared, parallel.DefaultTuning); err != nil {
		t.Fatal(err)
	}
	if err := run(37, 8, 2, 2, true, 1, parallel.ModeShared, parallel.DefaultTuning); err != nil {
		t.Fatal(err)
	}
	if err := run(0, 8, 2, 1, false, 1, parallel.ModePacked, parallel.DefaultTuning); err == nil {
		t.Fatal("n=0 must fail")
	}
	if err := run(48, 8, 2, 3, false, 1, parallel.ModeShared, parallel.DefaultTuning); err == nil {
		t.Fatal("chips that do not divide p must fail validation")
	}
}

func TestBenchSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_lu.json")
	if err := bench(path, 48, 8, []int{1, 2}, 1, 1, parallel.DefaultTuning, tune.Params{}, true); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Name string `json:"name"`
		Runs []struct {
			Algorithm      string  `json:"algorithm"`
			Mode           string  `json:"mode"`
			N              int     `json:"n"`
			GFlops         float64 `json:"gflops"`
			MSStageBytes   uint64  `json:"ms_stage_bytes"`
			MDStageBytes   uint64  `json:"md_stage_bytes"`
			ComputeSeconds float64 `json:"compute_seconds"`
			Optimized      bool    `json:"optimized"`
			MSElidedBytes  uint64  `json:"ms_elided_bytes"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	// 1 naive + view × 2 core counts + the 3 staging modes × 2 core
	// counts × 2 optimize settings (view has no schedule to optimize).
	if rec.Name != "lu" || len(rec.Runs) != 15 {
		t.Fatalf("record has %d runs, want 15: %+v", len(rec.Runs), rec)
	}
	sharedMS := map[string]uint64{}
	optimized, elided := 0, uint64(0)
	for _, r := range rec.Runs {
		if r.GFlops <= 0 || r.N != 48 {
			t.Fatalf("malformed run %+v", r)
		}
		if r.Optimized {
			optimized++
			elided += r.MSElidedBytes
		} else if r.MSElidedBytes != 0 {
			t.Fatalf("baseline run carries elided bytes: %+v", r)
		}
		switch r.Mode {
		case "shared", "shared-pipelined":
			if r.MSStageBytes == 0 || r.MDStageBytes == 0 {
				t.Fatalf("%s run missing per-level traffic: %+v", r.Mode, r)
			}
			if r.ComputeSeconds <= 0 {
				t.Fatalf("%s run missing overlap split: %+v", r.Mode, r)
			}
			sharedMS[r.Mode] += r.MSStageBytes
		case "packed":
			if r.MSStageBytes != 0 || r.MDStageBytes == 0 {
				t.Fatalf("packed run traffic malformed: %+v", r)
			}
		default:
			if r.MSStageBytes != 0 || r.MDStageBytes != 0 {
				t.Fatalf("%s run must move no counted bytes: %+v", r.Mode, r)
			}
		}
	}
	// Pipelining may only change timing, never traffic.
	if sharedMS["shared"] != sharedMS["shared-pipelined"] {
		t.Fatalf("pipelined MS bytes %d differ from serial %d", sharedMS["shared-pipelined"], sharedMS["shared"])
	}
	if optimized != 6 {
		t.Fatalf("record has %d optimized runs, want 6 (3 staging modes × 2 core counts)", optimized)
	}
	// The headline: the optimizer keeps the LU panel tiles resident, so
	// the optimized shared-level runs must measure elided MS bytes.
	if elided == 0 {
		t.Fatal("no optimized run measured any elided MS bytes")
	}
}
