// Command lufact executes the blocked LU factorisation for real through
// the schedule IR — goroutine per core, packed arena-resident tiles —
// verifies |A − L·U| against the input, and reports wall-clock time,
// effective GFLOP/s (2n³/3 flops) and the executor's measured per-level
// traffic. It mirrors cmd/gemm for the repository's second workload.
//
// Examples:
//
//	lufact -n 512                     # factor a 512×512 system, packed staging
//	lufact -n 512 -q 64 -p 8 -mode shared
//	lufact -n 512 -q 64 -p 8 -mode shared-pipelined
//	lufact -n 1024 -bench-json BENCH_lu.json -bench-cores 1,2,4
//
// -mode selects how the executor realises staging: "packed" (per-core
// arenas, the default), "view" (strided baseline, staging probe-only),
// "shared" (the full two-level hierarchy: tiles flow memory → shared
// arena → core arenas, and the MS/MD streams are physically distinct)
// or "shared-pipelined" (the same hierarchy with a stager goroutine
// overlapping the memory↔shared stream with compute).
//
// With -bench-json the command switches to benchmark mode: it measures
// the sequential tiled Factor plus the schedule-driven factorisation
// under all four executor modes for each requested core count, and
// writes the GFLOP/s records — with the executor's per-level traffic
// byte counts and, for the shared-level modes, the stage-wait/compute
// split — as JSON: the factorisation's perf trajectory, the companion
// of BENCH_gemm.json.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/faultinject"
	"repro/internal/lu"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/tune"
)

func main() {
	var (
		n           = flag.Int("n", 512, "matrix order in coefficients")
		q           = flag.Int("q", 32, "tile size in coefficients")
		cores       = flag.Int("p", runtime.NumCPU(), "worker goroutines (cores); benchmark mode uses -bench-cores instead")
		chips       = flag.Int("chips", 1, "chips the cores and the shared cache are split over (must divide -p)")
		modeName    = flag.String("mode", parallel.ModePacked.String(), "executor mode: packed, view, shared or shared-pipelined (benchmark mode measures all four)")
		verify      = flag.Bool("verify", true, "check |A - L·U| against the input (ignored in benchmark mode)")
		seed        = flag.Uint64("seed", 1, "input matrix seed")
		benchJSON   = flag.String("bench-json", "", "benchmark mode: write GFLOP/s records to this JSON file")
		benchCores  = flag.String("bench-cores", "1,2,4", "core counts measured in benchmark mode")
		benchReps   = flag.Int("bench-reps", 3, "repetitions per benchmark configuration (fastest wins)")
		kernelShape = flag.String("kernel-shape", "", "kernel register-blocking shape: 4x4, 8x4 or 8x8 (default: TUNE.json, else 4x4)")
		lookahead   = flag.Int("lookahead", 0, "pipeline lookahead depth of shared-pipelined mode (default: TUNE.json, else 1)")
		tunePath    = flag.String("tune", "", "load tunables from this TUNE.json when it matches the host; explicit flags win")
		optimize    = flag.Bool("optimize", true, "run the LU program through the schedule optimizer (benchmark mode measures baseline/optimized pairs for staged modes)")
		faults      = flag.String("faults", "", "chaos mode: inject faults from this spec (e.g. 'panic@1:7', 'corrupt@*:5'; see internal/faultinject); the faulted run must fail with provenance, Reset, and re-run clean")
		singularAt  = flag.Int("singular-at", -1, "factor a deliberately singular input whose pivot tile vanishes at this block step (demonstrates the singular failure path; exits non-zero)")
	)
	flag.Parse()

	params, err := resolveTuning(*tunePath, *kernelShape, *lookahead, *q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lufact:", err)
		os.Exit(1)
	}
	tun, err := params.Tuning()
	if err == nil && *benchJSON != "" {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "p" || f.Name == "verify" || f.Name == "mode" {
				fmt.Fprintf(os.Stderr, "lufact: -%s is ignored in benchmark mode (use -bench-cores; all modes are measured; correctness is covered by go test)\n", f.Name)
			}
		})
		var coreList []int
		coreList, err = report.ParseCores(*benchCores)
		if err == nil {
			err = bench(*benchJSON, *n, params.Q, coreList, *benchReps, *seed, tun, params, *optimize)
		}
	} else if err == nil {
		var mode parallel.Mode
		mode, err = parallel.ParseMode(*modeName)
		if err == nil {
			tun.Optimize = *optimize
			switch {
			case *faults != "":
				err = chaos(*faults, *n, params.Q, *cores, *chips, *seed, mode, tun)
			case *singularAt >= 0:
				err = singularRun(*n, params.Q, *cores, *chips, *seed, mode, tun, *singularAt)
			default:
				err = run(*n, params.Q, *cores, *chips, *verify, *seed, mode, tun)
			}
		}
	}
	if err != nil {
		// A vanishing pivot is a property of the input, not a harness
		// failure: name the exact block step from the RunError provenance
		// so the user knows where the factorisation died.
		if step, ok := lu.SingularStep(err); ok {
			fmt.Fprintf(os.Stderr, "lufact: matrix is singular at step %d\n", step)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "lufact:", err)
		os.Exit(1)
	}
}

// chaos is the -faults path: factor under an injected fault plan with
// the integrity tripwire armed, expecting a structured failure, then
// Reset, restore the input, and prove the same executor re-runs clean —
// bitwise identical to the sequential factorisation. See cmd/gemm's
// chaos mode; this is its LU counterpart, built on lu.NewRun.
func chaos(spec string, n, q, cores, chips int, seed uint64, mode parallel.Mode, tun parallel.Tuning) error {
	plan, err := faultinject.ParseSpec(spec)
	if err != nil {
		return err
	}
	if n <= 0 || q <= 0 {
		return fmt.Errorf("need positive -n and -q, got n=%d q=%d", n, q)
	}
	mach := lu.MachineFor(cores, q)
	mach.Chips = chips
	if err := mach.Validate(); err != nil {
		return err
	}
	team, err := parallel.NewTeam(cores)
	if err != nil {
		return err
	}
	defer team.Close()
	orig := lu.RandomDominant(n, seed)
	work := orig.Clone()
	fr, err := lu.NewRun(work, q, team, mode, mach, tun)
	if err != nil {
		return err
	}
	fr.Ex.SetFaultInjector(plan)
	fr.Ex.SetIntegrityChecks(true)

	fmt.Printf("chaos: LU of %d×%d under plan %q (mode %v, p=%d)\n", n, n, plan, mode, cores)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := fr.Ex.RunContext(ctx, fr.Prog); err != nil {
		var re *parallel.RunError
		if !errors.As(err, &re) {
			return fmt.Errorf("chaos: fault surfaced without RunError provenance: %w", err)
		}
		fmt.Printf("chaos: faulted as expected: %v\n", re)
		fr.Ex.Reset()
	} else {
		fmt.Println("chaos: no injected fault fired; run completed clean")
	}

	// Recovery: restore the input, drop the injector, and prove the same
	// executor factors clean after the failure.
	fr.Ex.SetFaultInjector(nil)
	if err := work.CopyFrom(orig); err != nil {
		return err
	}
	if err := fr.Ex.Run(fr.Prog); err != nil {
		return fmt.Errorf("chaos: clean re-run after Reset failed: %w", err)
	}
	seq := orig.Clone()
	if err := lu.Factor(seq, q); err != nil {
		return err
	}
	if !work.Equal(seq) {
		return fmt.Errorf("chaos: re-run factors deviate from the sequential ones by %g", work.MaxAbsDiff(seq))
	}
	fmt.Println("chaos: recovered; clean re-run bitwise identical to the sequential factorisation")
	return nil
}

// singularRun is the -singular-at path: factor lu.SingularInput — a
// matrix whose pivot tile vanishes at the given block step — through
// the executor and let the error propagate. main recognises the
// ErrSingular-wrapping RunError and exits non-zero naming the step from
// its provenance, which is exactly what this path demonstrates.
func singularRun(n, q, cores, chips int, seed uint64, mode parallel.Mode, tun parallel.Tuning, step int) error {
	if n <= 0 || q <= 0 {
		return fmt.Errorf("need positive -n and -q, got n=%d q=%d", n, q)
	}
	if steps := (n + q - 1) / q; step >= steps {
		return fmt.Errorf("-singular-at %d is outside the %d-step factorisation", step, steps)
	}
	mach := lu.MachineFor(cores, q)
	mach.Chips = chips
	if err := mach.Validate(); err != nil {
		return err
	}
	team, err := parallel.NewTeam(cores)
	if err != nil {
		return err
	}
	defer team.Close()
	a := lu.SingularInput(n, q, step, seed)
	fmt.Printf("factoring a deliberately singular %d×%d input (vanishing pivot tile at block step %d, mode %v, p=%d)\n",
		n, n, step, mode, cores)
	if _, err := lu.FactorParallelTuned(a, q, team, mode, mach, tun); err != nil {
		return err
	}
	return fmt.Errorf("singular input factored without error; the failure path is broken")
}

// resolveTuning composes the configuration in the documented order —
// explicit flags > a host-matched TUNE.json's LU entry > defaults. The
// returned Params always carries a concrete tile size (the file's
// winner only replaces the default when -q was not given).
func resolveTuning(tunePath, shapeFlag string, lookaheadFlag, qFlag int) (tune.Params, error) {
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	var params tune.Params
	if tunePath != "" {
		tf, err := tune.Load(tunePath)
		if err != nil {
			return tune.Params{}, err
		}
		if !tf.MatchesHost() {
			fmt.Fprintf(os.Stderr, "lufact: %s was tuned on a different host; ignoring it\n", tunePath)
		} else if tf.LU != nil {
			params = tf.LU.Params
		}
	}
	params = tune.Override{
		Shape: shapeFlag, ShapeSet: explicit["kernel-shape"],
		Lookahead: lookaheadFlag, LookaheadSet: explicit["lookahead"],
		Q: qFlag, QSet: explicit["q"],
	}.Apply(params)
	if params.Q == 0 {
		params.Q = qFlag
	}
	return params, nil
}

// optSettings returns the optimizer settings measured for one mode:
// staged modes get a baseline/optimized pair when the optimizer is
// enabled, so every record carries its own control. View staging moves
// no counted bytes, so it stays baseline-only.
func optSettings(mode parallel.Mode, optimize bool) []bool {
	if !optimize || mode == parallel.ModeView {
		return []bool{false}
	}
	return []bool{false, true}
}

// optSuffix marks ratios whose both sides ran the optimizer.
func optSuffix(sp report.BenchSpeedup) string {
	if sp.Optimized {
		return "+opt"
	}
	return ""
}

// luFlops is the classical flop count of an unpivoted n×n LU, 2n³/3.
func luFlops(n int) float64 {
	fn := float64(n)
	return 2 * fn * fn * fn / 3
}

func run(n, q, cores, chips int, verify bool, seed uint64, mode parallel.Mode, tun parallel.Tuning) error {
	if n <= 0 || q <= 0 {
		return fmt.Errorf("need positive -n and -q, got n=%d q=%d", n, q)
	}
	mach := lu.MachineFor(cores, q)
	mach.Chips = chips
	if err := mach.Validate(); err != nil {
		return err
	}
	fmt.Printf("machine: %s\nmode: %v\nworkload: LU of %d×%d, tiles of %d×%d\n\n", mach, mode, n, n, q, q)

	orig := lu.RandomDominant(n, seed)
	tbl := report.NewTable("path", "time", "GFLOP/s", "max |A-LU|", "MS", "MD")

	// Sequential tiled baseline.
	seq := orig.Clone()
	start := time.Now()
	if err := lu.Factor(seq, q); err != nil {
		return err
	}
	seqTime := time.Since(start)
	residual := func(f *matrix.Dense) string {
		if !verify {
			return "skipped"
		}
		return fmt.Sprintf("%.2e", lu.Verify(orig, f))
	}
	tbl.AddRow("sequential tiled", seqTime.Round(time.Microsecond).String(),
		fmt.Sprintf("%.2f", luFlops(n)/seqTime.Seconds()/1e9), residual(seq), "-", "-")

	// Schedule-driven factorisation on the team.
	team, err := parallel.NewTeam(cores)
	if err != nil {
		return err
	}
	defer team.Close()
	par := orig.Clone()
	start = time.Now()
	stats, err := lu.FactorParallelTuned(par, q, team, mode, mach, tun)
	if err != nil {
		return err
	}
	tra := stats.Traffic
	parTime := time.Since(start)
	tbl.AddRow(fmt.Sprintf("schedule %v p=%d", mode, cores), parTime.Round(time.Microsecond).String(),
		fmt.Sprintf("%.2f", luFlops(n)/parTime.Seconds()/1e9), residual(par),
		report.FormatBytes(tra.MS.Bytes()), report.FormatBytes(tra.MD.Bytes()))
	fmt.Print(tbl.String())
	if mach.ChipCount() > 1 {
		fmt.Printf("\ninter-chip (chips=%d): %s staged, %s written back\n",
			mach.ChipCount(), report.FormatBytes(tra.IC.StageBytes), report.FormatBytes(tra.IC.WriteBackBytes))
	}

	if !par.Equal(seq) {
		return fmt.Errorf("schedule-driven factors deviate from the sequential ones by %g", par.MaxAbsDiff(seq))
	}
	fmt.Println("\nschedule-driven factors are bitwise identical to the sequential ones")
	return nil
}

// bench measures sequential vs view vs packed vs shared and writes the
// JSON record, including the executor's per-level traffic byte counts.
// Every configuration runs reps times and the fastest repetition is
// recorded (the traffic counts are deterministic, identical in every
// repetition).
func bench(path string, n, q int, coreList []int, reps int, seed uint64, tun parallel.Tuning, params tune.Params, optimize bool) error {
	if n <= 0 || q <= 0 {
		return fmt.Errorf("need positive -n and -q, got n=%d q=%d", n, q)
	}
	if reps < 1 {
		reps = 1
	}
	orderBlocks := (n + q - 1) / q
	rec := report.NewBench("lu")
	fmt.Printf("benchmark: LU of n=%d (%d tiles of %d×%d), cores %v, best of %d\n\n",
		n, orderBlocks, q, q, coreList, reps)

	orig := lu.RandomDominant(n, seed)
	work := matrix.New(n, n)

	best := func(f func() (time.Duration, error)) (time.Duration, error) {
		var min time.Duration
		for i := 0; i < reps; i++ {
			if err := work.CopyFrom(orig); err != nil {
				return 0, err
			}
			d, err := f()
			if err != nil {
				return 0, err
			}
			if min == 0 || d < min {
				min = d
			}
		}
		return min, nil
	}

	elapsed, err := best(func() (time.Duration, error) {
		start := time.Now()
		if err := lu.Factor(work, q); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	})
	if err != nil {
		return err
	}
	naive := rec.AddOp("sequential tiled LU", "naive", 1, orderBlocks, q, luFlops(n), elapsed)
	naive.N = n
	fmt.Printf("%-20s %-7s p=%d  %8.2f GFLOP/s\n", naive.Algorithm, naive.Mode, naive.Cores, naive.GFlops)

	for _, p := range coreList {
		mach := lu.MachineFor(p, q)
		team, err := parallel.NewTeam(p)
		if err != nil {
			return err
		}
		for _, mode := range []parallel.Mode{parallel.ModeView, parallel.ModePacked, parallel.ModeShared, parallel.ModeSharedPipelined} {
			// Staged modes are measured as a baseline/optimized pair over
			// the same input, so the record carries the optimizer's
			// measured MS savings cell by cell.
			var baseMSBytes uint64
			for _, opt := range optSettings(mode, optimize) {
				// The traffic is deterministic across repetitions; the overlap
				// split is taken from the same fastest repetition as the time.
				exTun := tun
				exTun.Optimize = opt
				var stats lu.Stats
				var elapsed time.Duration
				for i := 0; i < reps; i++ {
					if err := work.CopyFrom(orig); err != nil {
						team.Close()
						return err
					}
					start := time.Now()
					s, err := lu.FactorParallelTuned(work, q, team, mode, mach, exTun)
					if err != nil {
						team.Close()
						return fmt.Errorf("LU (%v, p=%d): %w", mode, p, err)
					}
					if d := time.Since(start); elapsed == 0 || d < elapsed {
						elapsed = d
						stats = s
					}
				}
				tra := stats.Traffic
				r := rec.AddOp("LU", mode.String(), p, orderBlocks, q, luFlops(n), elapsed)
				r.N = n
				r.KernelShape = params.Shape
				r.Lookahead = params.Lookahead
				r.MSStageBytes = tra.MS.StageBytes
				r.MSWriteBackBytes = tra.MS.WriteBackBytes
				r.MDStageBytes = tra.MD.StageBytes
				r.MDWriteBackBytes = tra.MD.WriteBackBytes
				modeLabel := r.Mode
				if opt {
					r.Optimized = true
					if ms := tra.MS.Bytes(); baseMSBytes >= ms {
						r.MSElidedBytes = baseMSBytes - ms
					}
					modeLabel += "+opt"
				} else {
					baseMSBytes = tra.MS.Bytes()
				}
				if mode.SharedLevel() {
					r.SetOverlap(stats.StageWait, stats.Compute)
					fmt.Printf("%-20s %-17s p=%d  %8.2f GFLOP/s  MS=%s MD=%s  stage-wait=%v overlap=%.2f\n",
						r.Algorithm, modeLabel, r.Cores, r.GFlops, report.FormatBytes(tra.MS.Bytes()), report.FormatBytes(tra.MD.Bytes()),
						stats.StageWait.Round(time.Microsecond), r.OverlapEfficiency)
				} else {
					fmt.Printf("%-20s %-17s p=%d  %8.2f GFLOP/s  MS=%s MD=%s\n",
						r.Algorithm, modeLabel, r.Cores, r.GFlops, report.FormatBytes(tra.MS.Bytes()), report.FormatBytes(tra.MD.Bytes()))
				}
			}
		}
		team.Close()
	}

	fmt.Println("\npacked over view:")
	for _, sp := range rec.Speedup(parallel.ModePacked.String(), parallel.ModeView.String()) {
		fmt.Printf("%-20s p=%d%s  %5.2fx\n", sp.Algorithm, sp.Cores, optSuffix(sp), sp.Ratio)
	}
	fmt.Println("\npipelined over shared:")
	for _, sp := range rec.Speedup(parallel.ModeSharedPipelined.String(), parallel.ModeShared.String()) {
		fmt.Printf("%-20s p=%d%s  %5.2fx\n", sp.Algorithm, sp.Cores, optSuffix(sp), sp.Ratio)
	}
	if err := rec.WriteJSONFile(path); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (%d runs)\n", path, len(rec.Runs))
	return nil
}
