// Command mmreuse records one algorithm's per-core access streams and
// prints the exact LRU miss-vs-capacity curve via stack-distance
// analysis — Figure 8 for every CD at once, from one run. Traces can be
// saved to disk and re-analysed later without re-simulating.
//
// Examples:
//
//	mmreuse -order 24                                  # curves for the Maximum Reuse variants
//	mmreuse -algo "Distributed Opt." -order 48 -caps 3,6,12,21,42
//	mmreuse -algo "Tradeoff" -order 32 -dump t.trace   # record once …
//	mmreuse -load t.trace -caps 4,8,16                 # … re-analyse offline
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/algo"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/reuse"
)

func main() {
	var (
		algoName = flag.String("algo", "", "algorithm name (default: the three Maximum Reuse variants)")
		order    = flag.Int("order", 24, "square matrix order in blocks")
		q        = flag.Int("q", 32, "block size selecting the paper configuration")
		caps     = flag.String("caps", "3,4,6,8,12,16,21,32,64", "comma-separated CD capacities to price")
		dump     = flag.String("dump", "", "write the recorded trace to this file")
		load     = flag.String("load", "", "analyse a previously dumped trace instead of simulating")
	)
	flag.Parse()

	if err := run(*algoName, *order, *q, *caps, *dump, *load); err != nil {
		fmt.Fprintln(os.Stderr, "mmreuse:", err)
		os.Exit(1)
	}
}

func run(algoName string, order, q int, capsArg, dump, load string) error {
	capacities, err := parseCaps(capsArg)
	if err != nil {
		return err
	}

	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return err
		}
		defer f.Close()
		rec, name, err := reuse.Load(f)
		if err != nil {
			return err
		}
		fmt.Printf("trace of %q, %d cores\n\n", name, len(rec.Cores))
		printCurve(name, rec.Analyze(), capacities)
		return nil
	}

	cfg, err := machine.FindConfig(q)
	if err != nil {
		return err
	}
	mach := cfg.Machine(machine.PaperCores, false)
	w := algo.Square(order)

	names := []string{"Shared Opt.", "Distributed Opt.", "Tradeoff"}
	if algoName != "" {
		names = []string{algoName}
	}
	fmt.Printf("machine %s, workload %d×%d×%d blocks, LRU-50 parameters\n\n", mach, w.M, w.N, w.Z)
	for _, name := range names {
		a, err := algo.ByName(name)
		if err != nil {
			return err
		}
		rec := reuse.NewRecorder(mach.P)
		wp := w
		wp.Probe = rec.Probe()
		if _, err := algo.Run(a, mach, mach.Halve(), wp, algo.LRU); err != nil {
			return err
		}
		printCurve(name, rec.Analyze(), capacities)
		if dump != "" && len(names) == 1 {
			f, err := os.Create(dump)
			if err != nil {
				return err
			}
			err = rec.Save(f, name)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Printf("trace written to %s\n", dump)
		}
	}
	return nil
}

func printCurve(name string, hists []*reuse.Histogram, capacities []int) {
	tbl := report.NewTable("CD (blocks)", "MD = max_c misses", "busiest core hit rate")
	for _, c := range capacities {
		var md uint64
		var total uint64
		for _, h := range hists {
			if v := h.MissesFor(c); v > md {
				md = v
				total = h.Total()
			}
		}
		rate := 0.0
		if total > 0 {
			rate = 1 - float64(md)/float64(total)
		}
		tbl.AddRow(strconv.Itoa(c), strconv.FormatUint(md, 10), fmt.Sprintf("%.1f%%", 100*rate))
	}
	fmt.Printf("%s\n%s\n", name, tbl.String())
}

func parseCaps(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad capacity %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no capacities given")
	}
	return out, nil
}
