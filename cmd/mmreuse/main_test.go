package main

import "testing"

func TestParseCaps(t *testing.T) {
	got, err := parseCaps("3, 6,12")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 6, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseCaps = %v", got)
		}
	}
	for _, bad := range []string{"", "a,b", "0", "-3", ",,"} {
		if _, err := parseCaps(bad); err == nil {
			t.Fatalf("parseCaps(%q) must fail", bad)
		}
	}
}

func TestRunSmoke(t *testing.T) {
	if err := run("Tradeoff", 6, 32, "3,7", "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run("nope", 6, 32, "3", "", ""); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
	if err := run("", 6, 128, "3", "", ""); err == nil {
		t.Fatal("unknown q must fail")
	}
	if err := run("", 6, 32, "x", "", ""); err == nil {
		t.Fatal("bad caps must fail")
	}
	if err := run("", 0, 32, "3", "", "/nonexistent/trace"); err == nil {
		t.Fatal("missing trace file must fail")
	}
}

func TestRunDumpLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trace := dir + "/t.trace"
	if err := run("Tradeoff", 6, 32, "3,7", trace, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("", 0, 0, "3,7", "", trace); err != nil {
		t.Fatal(err)
	}
}
