// Command schedlint statically verifies schedule programs before
// anything runs. The default mode lints the full registered grid —
// every algorithm in the registry plus the LU emitter, on single- and
// dual-chip machines, square and ragged shapes — through the schedule
// verifier, and re-checks every pipelined plan the planner builds for
// them through the independent plan checker. Each staged program is
// then rewritten by schedule.Optimize and the optimized program linted
// to the same standard (zero findings, all plan depths, balanced elision
// ledger), so a miscompiling optimizer pass is caught statically, before
// any executor replays its stream. Each finding carries its op index and
// line identity, so a broken emitter points at the exact operation that
// violates the invariant.
//
// With -fuzz N it instead decodes N pseudo-random byte programs
// through the same generator the fuzz corpus uses and verifies each:
// a robustness smoke proving the verifier classifies arbitrary garbage
// as findings without panicking. Exit status is 1 when the grid has
// findings; -fuzz only fails by crashing.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"repro/internal/algo"
	"repro/internal/lu"
	"repro/internal/machine"
	"repro/internal/schedule"
	"repro/internal/schedule/verify"
)

var (
	fuzzN    = flag.Int("fuzz", 0, "verify N pseudo-random programs instead of the grid")
	seed     = flag.Int64("seed", 1, "PRNG seed for -fuzz")
	maxDepth = flag.Int("depth", 3, "lint pipelined plans up to this depth")
)

func main() {
	flag.Parse()
	if *fuzzN > 0 {
		fuzz(*fuzzN, *seed)
		return
	}
	os.Exit(grid())
}

func gridMachines() []machine.Machine {
	return []machine.Machine{
		{P: 1, CS: 64, CD: 8, SigmaS: machine.DefaultSigmaS, SigmaD: machine.DefaultSigmaD, Q: 8},
		{P: 2, CS: 64, CD: 8, SigmaS: machine.DefaultSigmaS, SigmaD: machine.DefaultSigmaD, Q: 8},
		{P: 2, CS: 64, CD: 8, Chips: 2, SigmaS: machine.DefaultSigmaS, SigmaD: machine.DefaultSigmaD, Q: 8},
		{P: 4, CS: 140, CD: 12, SigmaS: machine.DefaultSigmaS, SigmaD: machine.DefaultSigmaD, Q: 8},
		{P: 4, CS: 140, CD: 12, Chips: 2, SigmaS: machine.DefaultSigmaS, SigmaD: machine.DefaultSigmaD, Q: 8},
	}
}

var gridWorkloads = []algo.Workload{
	algo.Square(6),
	{M: 5, N: 3, Z: 7},
	{M: 1, N: 1, Z: 1},
	{M: 7, N: 2, Z: 5},
}

func grid() int {
	programs, findings := 0, 0
	plans := func(label string, p *schedule.Program, cs int) {
		for d := 1; d <= *maxDepth; d++ {
			plan, err := schedule.PlanPipelineDepth(p, cs, d)
			if err != nil {
				fmt.Printf("%s: depth %d: planner: %v\n", label, d, err)
				findings++
				continue
			}
			for _, f := range verify.Plan(p, plan, cs) {
				fmt.Printf("%s: depth %d: %v\n", label, d, f)
				findings++
			}
		}
	}
	check := func(label string, p *schedule.Program, cs int) {
		programs++
		fs := verify.Program(p, p.Resources)
		for _, f := range fs {
			fmt.Printf("%s: %v\n", label, f)
		}
		findings += len(fs)
		if p.DemandDriven || len(fs) > 0 {
			return // nothing to phase, or not worth planning over a broken program
		}
		plans(label, p, cs)

		// The optimized grid is linted as strictly as the emitted one:
		// schedule.Optimize must rewrite every staged program into one the
		// verifier and the plan checker still find nothing wrong with, and
		// its ledger must account for every baseline stage exactly.
		q, rep, err := schedule.Optimize(p, schedule.OptimizeOptions{})
		if err != nil {
			fmt.Printf("%s: optimize: %v\n", label, err)
			findings++
			return
		}
		if rep.SkipReason != "" {
			fmt.Printf("%s: optimize skipped a staged program: %s\n", label, rep.SkipReason)
			findings++
			return
		}
		for _, lv := range []struct {
			name string
			c    schedule.OptimizeCounts
		}{{"shared", rep.Shared}, {"core", rep.Core}} {
			if lv.c.KeptStages+lv.c.ElidedStages != lv.c.BaselineStages ||
				lv.c.KeptWriteBacks+lv.c.ElidedWriteBacks != lv.c.BaselineWriteBacks {
				fmt.Printf("%s: optimize: %s ledger does not balance: %+v\n", label, lv.name, lv.c)
				findings++
			}
		}
		programs++
		optLabel := label + " +opt"
		ofs := verify.Program(q, q.Resources)
		for _, f := range ofs {
			fmt.Printf("%s: %v\n", optLabel, f)
		}
		findings += len(ofs)
		if len(ofs) == 0 {
			plans(optLabel, q, cs)
		}
	}

	for _, a := range algo.Extended() {
		for _, m := range gridMachines() {
			for _, w := range gridWorkloads {
				label := fmt.Sprintf("%s p=%d chips=%d %dx%dx%d",
					a.Name(), m.P, m.ChipCount(), w.M, w.N, w.Z)
				p, err := a.Schedule(m, w)
				if err != nil {
					fmt.Printf("%s: schedule: %v\n", label, err)
					findings++
					continue
				}
				check(label, p, m.CS)
			}
		}
	}
	for _, m := range gridMachines() {
		for _, nb := range []int{1, 2, 6} {
			label := fmt.Sprintf("LU p=%d chips=%d nb=%d", m.P, m.ChipCount(), nb)
			p, err := lu.Program(m, nb)
			if err != nil {
				fmt.Printf("%s: program: %v\n", label, err)
				findings++
				continue
			}
			check(label, p, m.CS)
		}
	}

	fmt.Printf("schedlint: %d programs linted, %d findings\n", programs, findings)
	if findings > 0 {
		return 1
	}
	return 0
}

// fuzz mirrors FuzzVerifyNeverPanics as a CLI smoke: random byte
// streams through verify.FuzzProgram, each verified (and, when clean
// enough to plan, planned and plan-checked). Any panic crashes with a
// nonzero status; otherwise the findings histogram is reported.
func fuzz(n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	counts := make(map[verify.Kind]int)
	clean := 0
	for i := 0; i < n; i++ {
		data := make([]byte, rng.Intn(48))
		rng.Read(data)
		cores, chips := uint8(rng.Intn(256)), uint8(rng.Intn(256))
		cs, cd := uint8(rng.Intn(256)), uint8(rng.Intn(256))
		p, res := verify.FuzzProgram(cores, chips, cs, cd, data)
		fs := verify.Program(p, res)
		if len(fs) == 0 {
			clean++
		}
		planable := true
		for _, f := range fs {
			counts[f.Kind]++
			if f.Kind == verify.BadKernel {
				planable = false // the planner's sinks panic on arity junk by design
			}
		}
		if !planable {
			continue
		}
		sharedCap := res.SharedBlocks
		if sharedCap <= 0 {
			sharedCap = 1
		}
		plan, err := schedule.PlanPipelineDepth(p, sharedCap, 1+int(cores)%3)
		if err != nil {
			continue
		}
		for _, f := range verify.Plan(p, plan, sharedCap) {
			counts[f.Kind]++
		}
	}

	kinds := make([]verify.Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	fmt.Printf("schedlint -fuzz: %d programs (seed %d), %d clean\n", n, seed, clean)
	for _, k := range kinds {
		fmt.Printf("  %-20s %d\n", k, counts[k])
	}
}
