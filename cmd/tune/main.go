// Command tune measures the machine-local optimum of the executor's
// tunables — kernel register-blocking shape, block edge q, pipeline
// lookahead depth — and writes the winners to TUNE.json, keyed by the
// host's identity (CPU model, GOMAXPROCS, OS/arch) so the record never
// silently applies to a different machine.
//
// Two workloads are swept, each over the full (shape × q × lookahead)
// grid with short timed repetitions, fastest repetition winning: the
// paper's shared-optimal product schedule and the blocked LU
// factorisation, both in ModeSharedPipelined (the mode every knob
// affects). cmd/gemm and cmd/lufact load the file at startup when
// -tune points at it; explicit flags always win over the file, and the
// file only applies when its host stanza matches the running machine.
//
// None of the knobs can change a computed result — every kernel shape
// is pinned bitwise-identical to its reference and the pipeline plan is
// re-verified at every depth — so a stale TUNE.json costs performance,
// never correctness.
//
// Examples:
//
//	tune                                  # full default sweep, writes TUNE.json
//	tune -order 8 -n 512 -reps 5 -out TUNE.json
//	tune -qs 16,32 -shapes 4x4,8x8 -lookaheads 1,2,3
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/algo"
	"repro/internal/lu"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/tune"
)

func main() {
	var (
		out        = flag.String("out", "TUNE.json", "output file")
		algoName   = flag.String("algo", "Shared Opt.", "product algorithm swept for the gemm entry")
		order      = flag.Int("order", 8, "gemm workload edge in blocks")
		n          = flag.Int("n", 256, "LU matrix order in coefficients")
		cores      = flag.Int("p", runtime.NumCPU(), "worker goroutines (recorded as the tuning's GOMAXPROCS context)")
		qs         = flag.String("qs", "32", "comma-separated block edges to sweep")
		shapes     = flag.String("shapes", "4x4,8x4,8x8", "comma-separated kernel shapes to sweep")
		lookaheads = flag.String("lookaheads", "1,2,3", "comma-separated pipeline lookahead depths to sweep")
		reps       = flag.Int("reps", 3, "timed repetitions per candidate (fastest wins)")
		seed       = flag.Uint64("seed", 1, "input matrix seed")
	)
	flag.Parse()

	cfg, err := parseSweep(*qs, *shapes, *lookaheads)
	if err == nil {
		cfg.algoName, cfg.order, cfg.n = *algoName, *order, *n
		cfg.cores, cfg.reps, cfg.seed = *cores, *reps, *seed
		err = runSweep(cfg, *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tune:", err)
		os.Exit(1)
	}
}

type sweepConfig struct {
	algoName    string
	order, n    int
	cores, reps int
	seed        uint64
	qs          []int
	shapes      []matrix.Shape
	lookaheads  []int
}

func parseSweep(qs, shapes, lookaheads string) (sweepConfig, error) {
	var cfg sweepConfig
	for _, s := range strings.Split(qs, ",") {
		q, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || q < 1 {
			return cfg, fmt.Errorf("bad block edge %q", s)
		}
		cfg.qs = append(cfg.qs, q)
	}
	for _, s := range strings.Split(shapes, ",") {
		sh, err := matrix.ParseShape(strings.TrimSpace(s))
		if err != nil {
			return cfg, err
		}
		cfg.shapes = append(cfg.shapes, sh)
	}
	for _, s := range strings.Split(lookaheads, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || k < 1 {
			return cfg, fmt.Errorf("bad lookahead %q", s)
		}
		cfg.lookaheads = append(cfg.lookaheads, k)
	}
	return cfg, nil
}

// candidate is one grid point with its measured rate.
type candidate struct {
	params tune.Params
	gflops float64
}

// isDefault reports whether the point is the untuned configuration at
// the sweep's first block edge — the baseline the ratchet compares to.
func (c candidate) isDefault(q0 int) bool {
	return c.params.Shape == matrix.Shape4x4.String() && c.params.Lookahead == 1 && c.params.Q == q0
}

func runSweep(cfg sweepConfig, out string) error {
	if cfg.reps < 1 {
		cfg.reps = 1
	}
	if _, err := algo.ByName(cfg.algoName); err != nil {
		return err
	}
	host := tune.CurrentHost()
	fmt.Printf("host: %s, GOMAXPROCS %d, %s %s/%s\n", host.CPUModel, host.GoMaxProcs, host.GoVersion, host.GOOS, host.GOARCH)
	fmt.Printf("sweep: q %v × shapes %v × lookahead %v, best of %d\n\n", cfg.qs, cfg.shapes, cfg.lookaheads, cfg.reps)

	gemm, err := sweepGemm(cfg)
	if err != nil {
		return err
	}
	luEntry, err := sweepLU(cfg)
	if err != nil {
		return err
	}

	f := &tune.File{
		Host:       host,
		Candidates: len(cfg.qs) * len(cfg.shapes) * len(cfg.lookaheads),
		Reps:       cfg.reps,
		Gemm:       gemm,
		LU:         luEntry,
	}
	if err := f.WriteFile(out); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", out)
	fmt.Printf("  gemm: shape %s q %d lookahead %d  %.2f GFLOP/s (default %.2f)\n",
		gemm.Shape, gemm.Q, gemm.Lookahead, gemm.GFlops, gemm.BaselineGFlops)
	fmt.Printf("  lu:   shape %s q %d lookahead %d  %.2f GFLOP/s (default %.2f)\n",
		luEntry.Shape, luEntry.Q, luEntry.Lookahead, luEntry.GFlops, luEntry.BaselineGFlops)
	return nil
}

// pick runs the grid, timing each point with measure, and folds the
// results into the workload's entry: the fastest point wins, and the
// default point's rate is recorded as the baseline.
func pick(cfg sweepConfig, name string, measure func(q int, tun parallel.Tuning) (time.Duration, float64, error)) (*tune.Entry, error) {
	var cands []candidate
	for _, q := range cfg.qs {
		for _, sh := range cfg.shapes {
			for _, k := range cfg.lookaheads {
				tun := parallel.Tuning{Kernels: matrix.KernelConfig{Shape: sh}, Lookahead: k}
				var best time.Duration
				var flops float64
				for r := 0; r < cfg.reps; r++ {
					d, fl, err := measure(q, tun)
					if err != nil {
						return nil, fmt.Errorf("%s shape %s q %d lookahead %d: %w", name, sh, q, k, err)
					}
					if best == 0 || d < best {
						best = d
					}
					flops = fl
				}
				if best <= 0 {
					best = time.Nanosecond
				}
				c := candidate{
					params: tune.Params{Shape: sh.String(), Q: q, Lookahead: k},
					gflops: flops / best.Seconds() / 1e9,
				}
				cands = append(cands, c)
				fmt.Printf("%-5s shape %-4s q %-4d lookahead %d  %8.2f GFLOP/s\n", name, sh, q, k, c.gflops)
			}
		}
	}
	winner := cands[0]
	baseline := 0.0
	for _, c := range cands {
		if c.gflops > winner.gflops {
			winner = c
		}
		if c.isDefault(cfg.qs[0]) {
			baseline = c.gflops
		}
	}
	return &tune.Entry{Params: winner.params, GFlops: winner.gflops, BaselineGFlops: baseline}, nil
}

// sweepGemm times the product schedule in ModeSharedPipelined at every
// grid point. Per block edge the triple, program, team and executor are
// built once; repetitions re-zero C and re-run, exactly like cmd/gemm's
// benchmark loop, so the timed region is the executed schedule itself.
func sweepGemm(cfg sweepConfig) (*tune.Entry, error) {
	a, err := algo.ByName(cfg.algoName)
	if err != nil {
		return nil, err
	}
	type rig struct {
		tr   *matrix.Triple
		ex   *parallel.Executor
		prog func() error
	}
	rigs := map[int]*rig{}
	var teams []*parallel.Team
	defer func() {
		for _, t := range teams {
			t.Close()
		}
	}()
	for _, q := range cfg.qs {
		mach := lu.MachineFor(cfg.cores, q)
		tr, err := matrix.NewTriple(cfg.order, cfg.order, cfg.order, q, cfg.seed)
		if err != nil {
			return nil, err
		}
		prog, err := a.Schedule(mach, algo.Workload{M: cfg.order, N: cfg.order, Z: cfg.order})
		if err != nil {
			return nil, err
		}
		team, err := parallel.NewTeam(mach.P)
		if err != nil {
			return nil, err
		}
		teams = append(teams, team)
		ex, err := parallel.NewExecutor(team, tr, nil, parallel.ModeSharedPipelined, mach.CD, mach.CS)
		if err != nil {
			return nil, err
		}
		rigs[q] = &rig{tr: tr, ex: ex, prog: func() error { return ex.Run(prog) }}
	}
	n := cfg.order // in blocks; coefficients vary with q
	return pick(cfg, "gemm", func(q int, tun parallel.Tuning) (time.Duration, float64, error) {
		r := rigs[q]
		r.ex.SetTuning(tun)
		r.tr.C.Dense().Zero()
		start := time.Now()
		if err := r.prog(); err != nil {
			return 0, 0, err
		}
		nc := float64(n * q)
		return time.Since(start), 2 * nc * nc * nc, nil
	})
}

// sweepLU times the blocked factorisation in ModeSharedPipelined at
// every grid point. The input is re-cloned per repetition (the
// factorisation is in-place); the clone is outside the timed region.
func sweepLU(cfg sweepConfig) (*tune.Entry, error) {
	orig := lu.RandomDominant(cfg.n, cfg.seed)
	team, err := parallel.NewTeam(cfg.cores)
	if err != nil {
		return nil, err
	}
	defer team.Close()
	return pick(cfg, "lu", func(q int, tun parallel.Tuning) (time.Duration, float64, error) {
		a := orig.Clone()
		mach := lu.MachineFor(cfg.cores, q)
		start := time.Now()
		if _, err := lu.FactorParallelTuned(a, q, team, parallel.ModeSharedPipelined, mach, tun); err != nil {
			return 0, 0, err
		}
		nc := float64(cfg.n)
		return time.Since(start), 2 * nc * nc * nc / 3, nil
	})
}
