package main

import (
	"path/filepath"
	"testing"

	"repro/internal/matrix"
	"repro/internal/tune"
)

func TestParseSweep(t *testing.T) {
	cfg, err := parseSweep("8, 16", "4x4,8x8", "1,3")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.qs) != 2 || cfg.qs[1] != 16 {
		t.Fatalf("qs = %v", cfg.qs)
	}
	if len(cfg.shapes) != 2 || cfg.shapes[1] != matrix.Shape8x8 {
		t.Fatalf("shapes = %v", cfg.shapes)
	}
	if len(cfg.lookaheads) != 2 || cfg.lookaheads[1] != 3 {
		t.Fatalf("lookaheads = %v", cfg.lookaheads)
	}
	for _, bad := range [][3]string{
		{"0", "4x4", "1"},
		{"8", "9x9", "1"},
		{"8", "4x4", "0"},
	} {
		if _, err := parseSweep(bad[0], bad[1], bad[2]); err == nil {
			t.Fatalf("parseSweep(%v) must fail", bad)
		}
	}
}

// The sweep itself, at smoke size: every grid point must execute, and
// the written file must load back, match this host, and carry a winner
// plus the default baseline for both workloads.
func TestSweepSmoke(t *testing.T) {
	cfg, err := parseSweep("8", "4x4,8x4", "1,2")
	if err != nil {
		t.Fatal(err)
	}
	cfg.algoName, cfg.order, cfg.n = "Shared Opt.", 2, 16
	cfg.cores, cfg.reps, cfg.seed = 2, 1, 1
	out := filepath.Join(t.TempDir(), "TUNE.json")
	if err := runSweep(cfg, out); err != nil {
		t.Fatal(err)
	}
	f, err := tune.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if !f.MatchesHost() {
		t.Fatal("freshly swept file must match the sweeping host")
	}
	if f.Candidates != 4 || f.Reps != 1 {
		t.Fatalf("provenance: candidates %d reps %d", f.Candidates, f.Reps)
	}
	for name, e := range map[string]*tune.Entry{"gemm": f.Gemm, "lu": f.LU} {
		if e == nil {
			t.Fatalf("%s entry missing", name)
		}
		if e.GFlops <= 0 || e.BaselineGFlops <= 0 {
			t.Fatalf("%s entry lacks measurements: %+v", name, e)
		}
		if e.GFlops < e.BaselineGFlops {
			t.Fatalf("%s winner %.3f slower than the default %.3f it competed against", name, e.GFlops, e.BaselineGFlops)
		}
		if _, err := e.Tuning(); err != nil {
			t.Fatalf("%s entry does not resolve: %v", name, err)
		}
	}
}
