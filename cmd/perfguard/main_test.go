package main

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/report"
)

// record writes a Bench JSON with one packed/view pair at the given
// GFLOP/s values and returns its path.
func record(t *testing.T, name string, packedSecs, viewSecs time.Duration) string {
	t.Helper()
	rec := report.NewBench(name)
	rec.Add("Tradeoff", "view", 2, 8, 8, viewSecs)
	rec.Add("Tradeoff", "packed", 2, 8, 8, packedSecs)
	path := filepath.Join(t.TempDir(), name+".json")
	if err := rec.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGuardPassesWhenPackedWins(t *testing.T) {
	path := record(t, "gemm", 80*time.Millisecond, 100*time.Millisecond) // packed 1.25x faster
	var out strings.Builder
	if err := guard(&out, []string{path}, "packed", "view", 0.1); err != nil {
		t.Fatalf("healthy ratio rejected: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "geomean") {
		t.Fatalf("missing geomean summary:\n%s", out.String())
	}
}

func TestGuardFailsOnRegression(t *testing.T) {
	path := record(t, "gemm", 200*time.Millisecond, 100*time.Millisecond) // packed 2x slower
	if err := guard(io.Discard, []string{path}, "packed", "view", 0.25); err == nil {
		t.Fatal("0.5x ratio must fail a 0.75 floor")
	}
}

func TestGuardAggregatesAcrossFiles(t *testing.T) {
	good := record(t, "gemm", 50*time.Millisecond, 100*time.Millisecond) // 2x
	bad := record(t, "lu", 190*time.Millisecond, 100*time.Millisecond)   // ~0.53x
	// Geomean ≈ 1.03x: passes a 0.9 floor only because both files count.
	if err := guard(io.Discard, []string{good, bad}, "packed", "view", 0.1); err != nil {
		t.Fatalf("aggregate geomean rejected: %v", err)
	}
}

// The pipelined guard enforces shared-pipelined ≥ (1 − noise) × shared
// when both modes are present…
func TestPipelinedGuardEnforcesWhenPresent(t *testing.T) {
	rec := report.NewBench("gemm")
	rec.Add("Tradeoff", "shared", 2, 8, 8, 100*time.Millisecond)
	rec.Add("Tradeoff", "shared-pipelined", 2, 8, 8, 90*time.Millisecond) // 1.11x: healthy
	path := filepath.Join(t.TempDir(), "pipe.json")
	if err := rec.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := guardLenient(&out, []string{path}, "shared-pipelined", "shared", 0.1); err != nil {
		t.Fatalf("healthy pipelined ratio rejected: %v\n%s", err, out.String())
	}
	slow := report.NewBench("gemm")
	slow.Add("Tradeoff", "shared", 2, 8, 8, 100*time.Millisecond)
	slow.Add("Tradeoff", "shared-pipelined", 2, 8, 8, 200*time.Millisecond) // 0.5x: regression
	slowPath := filepath.Join(t.TempDir(), "slow.json")
	if err := slow.WriteJSONFile(slowPath); err != nil {
		t.Fatal(err)
	}
	if err := guardLenient(io.Discard, []string{slowPath}, "shared-pipelined", "shared", 0.25); err == nil {
		t.Fatal("pipelined slower than serial must fail when both modes are present")
	}
}

// …but degrades to a warning when a record predates the pipelined
// executor and carries no such runs at all.
func TestPipelinedGuardWarnsOnOldRecords(t *testing.T) {
	old := record(t, "gemm", 80*time.Millisecond, 100*time.Millisecond) // packed/view only
	var out strings.Builder
	if err := guardLenient(&out, []string{old}, "shared-pipelined", "shared", 0.25); err != nil {
		t.Fatalf("record predating the pipelined mode must warn, not fail: %v", err)
	}
	if !strings.Contains(out.String(), "warning") || !strings.Contains(out.String(), "skipping") {
		t.Fatalf("missing degradation warning:\n%s", out.String())
	}
	// A mix of old and new records still enforces the pairs that exist.
	fresh := report.NewBench("lu")
	fresh.Add("LU", "shared", 2, 8, 8, 100*time.Millisecond)
	fresh.Add("LU", "shared-pipelined", 2, 8, 8, 400*time.Millisecond) // 0.25x: regression
	freshPath := filepath.Join(t.TempDir(), "fresh.json")
	if err := fresh.WriteJSONFile(freshPath); err != nil {
		t.Fatal(err)
	}
	if err := guardLenient(io.Discard, []string{old, freshPath}, "shared-pipelined", "shared", 0.25); err == nil {
		t.Fatal("regressed pairs must still fail even when another record is skipped")
	}
}

func TestGuardRejectsDegenerateInput(t *testing.T) {
	if err := guard(io.Discard, []string{filepath.Join(t.TempDir(), "missing.json")}, "packed", "view", 0.1); err == nil {
		t.Fatal("missing file must fail")
	}
	rec := report.NewBench("gemm")
	rec.Add("Tradeoff", "view", 2, 8, 8, time.Millisecond) // no packed runs at all
	path := filepath.Join(t.TempDir(), "half.json")
	if err := rec.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	if err := guard(io.Discard, []string{path}, "packed", "view", 0.1); err == nil {
		t.Fatal("record with no comparable pair must fail, not silently pass")
	}
	full := record(t, "gemm", time.Millisecond, time.Millisecond)
	if err := guard(io.Discard, []string{full}, "packed", "view", 1.5); err == nil {
		t.Fatal("noise margin outside [0,1) must fail")
	}
	_ = os.Remove(full)
}

// tunedPair writes a tuned and an untuned record sharing one
// (algorithm, mode, cores) run — at different block edges, which the
// tuned join must ignore — and returns both paths.
func tunedPair(t *testing.T, tunedSecs, defSecs time.Duration) (string, string) {
	t.Helper()
	dir := t.TempDir()
	tuned := report.NewBench("gemm")
	r := tuned.Add("Tradeoff", "shared-pipelined", 2, 4, 16, tunedSecs)
	r.KernelShape = "8x8"
	r.Lookahead = 2
	def := report.NewBench("gemm")
	def.Add("Tradeoff", "shared-pipelined", 2, 8, 8, defSecs)
	tp := filepath.Join(dir, "tuned.json")
	dp := filepath.Join(dir, "default.json")
	if err := tuned.WriteJSONFile(tp); err != nil {
		t.Fatal(err)
	}
	if err := def.WriteJSONFile(dp); err != nil {
		t.Fatal(err)
	}
	return tp, dp
}

func TestTunedGuardPassesWhenTuningWins(t *testing.T) {
	tp, dp := tunedPair(t, 80*time.Millisecond, 100*time.Millisecond)
	var out strings.Builder
	if err := guardTuned(&out, tp, dp, 0.1); err != nil {
		t.Fatalf("winning tuning rejected: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "tuned/default") {
		t.Fatalf("missing ratio lines:\n%s", out.String())
	}
}

func TestTunedGuardFailsWhenTuningRegresses(t *testing.T) {
	tp, dp := tunedPair(t, 200*time.Millisecond, 100*time.Millisecond)
	if err := guardTuned(io.Discard, tp, dp, 0.25); err == nil {
		t.Fatal("a tuning 2x slower than the defaults must fail the ratchet")
	}
}

// Mixed vintages: records written before the multi-chip machine model
// carry no chips fields, and must keep guarding cleanly next to records
// that do. Pre-chip runs join as single-chip; multi-chip runs join only
// with multi-chip runs of the same topology, and when the other record
// has none the guard warns instead of failing.
func TestGuardsTolerateMixedChipVintages(t *testing.T) {
	dir := t.TempDir()

	// New-vintage record: a healthy pair at chips=1 and one at chips=2.
	fresh := report.NewBench("gemm")
	fresh.Add("Shared Opt.", "shared", 4, 8, 8, 100*time.Millisecond)
	fresh.Add("Shared Opt.", "shared-pipelined", 4, 8, 8, 90*time.Millisecond)
	for _, mode := range []string{"shared", "shared-pipelined"} {
		r := fresh.Add("Shared Opt.", mode, 4, 8, 8, 95*time.Millisecond)
		r.SetTopology(2, 4)
	}
	freshPath := filepath.Join(dir, "fresh.json")
	if err := fresh.WriteJSONFile(freshPath); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := guardLenient(&out, []string{freshPath}, "shared-pipelined", "shared", 0.25); err != nil {
		t.Fatalf("multi-chip record rejected: %v\n%s", err, out.String())
	}
	// Both topologies must appear as distinct pairs, the multi-chip one
	// labelled as such.
	if !strings.Contains(out.String(), "p=4 chips=2") || !strings.Contains(out.String(), "over 2 pairs") {
		t.Fatalf("chips=1 and chips=2 pairs must both be guarded:\n%s", out.String())
	}

	// Old-vintage record of the same workload, no chips fields at all:
	// the tuned ratchet joins the single-chip runs, warns about the
	// orphaned multi-chip ones, and passes.
	old := report.NewBench("gemm")
	old.Add("Shared Opt.", "shared", 4, 8, 8, 100*time.Millisecond)
	old.Add("Shared Opt.", "shared-pipelined", 4, 8, 8, 100*time.Millisecond)
	oldPath := filepath.Join(dir, "old.json")
	if err := old.WriteJSONFile(oldPath); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := guardTuned(&out, freshPath, oldPath, 0.25); err != nil {
		t.Fatalf("pre-chip record must warn, not fail: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "warning") || !strings.Contains(out.String(), "predates the chip fields") {
		t.Fatalf("missing mixed-vintage warning:\n%s", out.String())
	}
}

// tRun builds one BenchRun for the traffic-ratchet join tests.
func tRun(algo, mode string, cores, chips int, optimized bool, msStage, msWB uint64) *report.BenchRun {
	r := &report.BenchRun{
		Algorithm: algo, Mode: mode, Cores: cores,
		GFlops: 1, MSStageBytes: msStage, MSWriteBackBytes: msWB,
		Optimized: optimized,
	}
	if chips > 1 {
		r.Chips = chips
	}
	return r
}

// trafficRec wraps runs in an envelope and writes it to a temp file.
func trafficRec(t *testing.T, name string, runs ...*report.BenchRun) string {
	t.Helper()
	rec := report.NewBench("lu")
	rec.Runs = runs
	path := filepath.Join(t.TempDir(), name)
	if err := rec.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrafficRatiosJoin(t *testing.T) {
	rec := &report.Bench{Runs: []*report.BenchRun{
		// A clean pair: optimized moved half the bytes.
		tRun("LU", "shared", 4, 1, false, 800, 200),
		tRun("LU", "shared", 4, 1, true, 400, 100),
		// Chips distinguish cells: same algo/mode/cores, other topology.
		tRun("LU", "shared", 4, 2, false, 1000, 0),
		tRun("LU", "shared", 4, 2, true, 1000, 0),
		// A packed pair with no MS stream carries no signal: skipped.
		tRun("LU", "packed", 4, 1, false, 0, 0),
		tRun("LU", "packed", 4, 1, true, 0, 0),
		// An optimized run with no baseline partner: an orphan.
		tRun("LU", "shared", 2, 1, true, 10, 0),
		// A pre-optimizer vintage run joins only as a baseline.
		tRun("Tradeoff", "shared", 4, 1, false, 500, 0),
	}}
	ratios, optimized, orphans := trafficRatios(rec)
	if optimized != 4 {
		t.Fatalf("optimized = %d, want 4", optimized)
	}
	if orphans != 1 {
		t.Fatalf("orphans = %d, want 1", orphans)
	}
	if len(ratios) != 2 {
		t.Fatalf("ratios = %+v, want 2 entries", ratios)
	}
	for _, r := range ratios {
		switch r.Chips {
		case 1:
			if math.Abs(r.Ratio-0.5) > 1e-12 {
				t.Fatalf("single-chip ratio = %g, want 0.5", r.Ratio)
			}
		case 2:
			if math.Abs(r.Ratio-1.0) > 1e-12 {
				t.Fatalf("dual-chip ratio = %g, want 1.0", r.Ratio)
			}
		default:
			t.Fatalf("unexpected ratio cell: %+v", r)
		}
	}
}

// A zero-byte baseline against a byte-moving optimized run must surface
// as +Inf, not be skipped — the optimizer invented traffic and the
// ratchet has to fail on it.
func TestTrafficRatiosInventedTraffic(t *testing.T) {
	rec := &report.Bench{Runs: []*report.BenchRun{
		tRun("LU", "shared", 4, 1, false, 0, 0),
		tRun("LU", "shared", 4, 1, true, 64, 0),
	}}
	ratios, _, _ := trafficRatios(rec)
	if len(ratios) != 1 || !math.IsInf(ratios[0].Ratio, 1) {
		t.Fatalf("ratios = %+v, want one +Inf entry", ratios)
	}
	path := trafficRec(t, "inf.json", rec.Runs...)
	if err := guardTraffic(io.Discard, []string{path}); err == nil {
		t.Fatal("invented traffic passed the ratchet")
	}
}

func TestGuardTrafficFreshRecordHolds(t *testing.T) {
	path := trafficRec(t, "fresh.json",
		tRun("LU", "shared", 4, 1, false, 1000, 0),
		tRun("LU", "shared", 4, 1, true, 600, 0))
	var out strings.Builder
	if err := guardTraffic(&out, []string{path}); err != nil {
		t.Fatalf("ratchet failed on an improving record: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0.600x") {
		t.Fatalf("ratio not reported:\n%s", out.String())
	}
}

func TestGuardTrafficFailsOnRegression(t *testing.T) {
	path := trafficRec(t, "regressed.json",
		tRun("LU", "shared", 4, 1, false, 1000, 0),
		tRun("LU", "shared", 4, 1, true, 1200, 0))
	err := guardTraffic(io.Discard, []string{path})
	if err == nil || !strings.Contains(err.Error(), "above 1.0") {
		t.Fatalf("ratchet passed a record whose optimized runs moved more bytes: %v", err)
	}
}

// A record with no optimized runs at all predates the field: the
// ratchet must warn and pass on it alone, keep enforcing the fresh
// record in a mixed-vintage file list, and still fail when the fresh
// record regresses behind a vintage one.
func TestGuardTrafficMixedVintage(t *testing.T) {
	oldPath := trafficRec(t, "old.json",
		tRun("Tradeoff", "shared", 4, 1, false, 1000, 0))
	freshPath := trafficRec(t, "fresh.json",
		tRun("LU", "shared", 4, 1, false, 1000, 0),
		tRun("LU", "shared", 4, 1, true, 900, 0))

	var out strings.Builder
	if err := guardTraffic(&out, []string{oldPath}); err != nil {
		t.Fatalf("ratchet failed on a pre-optimizer record: %v", err)
	}
	if !strings.Contains(out.String(), "predates the optimizer") {
		t.Fatalf("vintage warning missing:\n%s", out.String())
	}

	out.Reset()
	if err := guardTraffic(&out, []string{oldPath, freshPath}); err != nil {
		t.Fatalf("mixed-vintage list failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "over 1 pairs") {
		t.Fatalf("fresh record not enforced in mixed list:\n%s", out.String())
	}

	badPath := trafficRec(t, "bad.json",
		tRun("LU", "shared", 4, 1, false, 100, 0),
		tRun("LU", "shared", 4, 1, true, 200, 0))
	if err := guardTraffic(io.Discard, []string{oldPath, badPath}); err == nil {
		t.Fatal("regression hidden behind a vintage record passed the ratchet")
	}
}

// Optimized runs with no baselines at all mean the record is not a
// paired measurement — an error, not a warning, because the ratchet
// would otherwise pass vacuously forever.
func TestGuardTrafficAllOrphans(t *testing.T) {
	path := trafficRec(t, "orphans.json",
		tRun("LU", "shared", 4, 1, true, 600, 0))
	if err := guardTraffic(io.Discard, []string{path}); err == nil {
		t.Fatal("unpaired record passed the ratchet")
	}
}

func TestTunedGuardRejectsDisjointRecords(t *testing.T) {
	dir := t.TempDir()
	a := report.NewBench("gemm")
	a.Add("Tradeoff", "packed", 2, 8, 8, 10*time.Millisecond)
	b := report.NewBench("lu")
	b.Add("LU", "shared", 4, 8, 8, 10*time.Millisecond)
	ap, bp := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	if err := a.WriteJSONFile(ap); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSONFile(bp); err != nil {
		t.Fatal(err)
	}
	if err := guardTuned(io.Discard, ap, bp, 0.1); err == nil {
		t.Fatal("records with no common run must not pass vacuously")
	}
}
