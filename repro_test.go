package repro

import "testing"

func TestFacadeSimulation(t *testing.T) {
	sim, err := NewSimulator(QuadCore(32, false))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunByName("Tradeoff", Square(24), SettingLRU50)
	if err != nil {
		t.Fatal(err)
	}
	if res.MS == 0 || res.MD == 0 || res.Tdata == 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	b := Bounds(sim.Machine(), Square(24))
	if float64(res.MS) < b.MS {
		t.Fatal("simulated MS beats the lower bound")
	}
}

func TestFacadeConfigsAndAlgorithms(t *testing.T) {
	if got := len(PaperConfigs()); got != 3 {
		t.Fatalf("PaperConfigs: %d, want 3", got)
	}
	if got := len(Algorithms()); got != 6 {
		t.Fatalf("Algorithms: %d, want 6", got)
	}
	if _, err := AlgorithmByName("Shared Opt."); err != nil {
		t.Fatal(err)
	}
	if _, err := AlgorithmByName("bogus"); err == nil {
		t.Fatal("unknown name must fail")
	}
}

func TestFacadeQuadCorePanicsOnUnknownQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for q=33")
		}
	}()
	QuadCore(33, false)
}

func TestFacadeRealExecution(t *testing.T) {
	tr, err := NewTriple(6, 6, 6, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	mach := QuadCore(32, false)
	mach.Q = 8
	if err := Multiply("Distributed Opt.", tr, mach); err != nil {
		t.Fatal(err)
	}
	diff, err := Verify(tr)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-10 {
		t.Fatalf("real execution deviates by %g", diff)
	}
}
